package cluster

import (
	"fmt"
	"math/rand"
	"time"

	"sdnavail/internal/vclock"
)

// RAFT-style leadership for the QuorumStore: per-replica roles, terms,
// randomized election timeouts, heartbeat-refreshed deadlines, vote
// counting with majority-of-total quorum, and the gray-leader detector.
// Everything is driven by the injected vclock through Tick, so elections
// are deterministic under FakeClock.

// Replica roles.
const (
	RoleFollower  = "follower"
	RoleCandidate = "candidate"
	RoleLeader    = "leader"
)

// Raft event kinds, drained by the cluster and surfaced as telemetry.
const (
	RaftLeaderLost   = "leader-lost"
	RaftElected      = "leader-elected"
	RaftSplitVote    = "split-vote"
	RaftGrayDetected = "gray-detected"
)

// RaftEvent is one leadership transition of a store.
type RaftEvent struct {
	// Store is the store name ("cassandra-config", "cassandra-analytics").
	Store string
	// Kind is one of the Raft* constants.
	Kind string
	// Node is the replica the event is about (the lost or elected leader,
	// the deposed gray leader; -1 for split votes).
	Node int
	// Term is the term after the transition.
	Term uint64
	// At is the clock time of the transition.
	At time.Time
	// Duration carries the kind-specific latency: leader-lost → elected
	// recovery time on elections, lie onset → detection on gray-detected.
	Duration time.Duration
}

// RaftTuning configures a store's election behaviour. The zero value is
// instant mode: leadership hands over synchronously inside SetAlive and
// writes never wait on an election.
type RaftTuning struct {
	// ElectionMin/ElectionMax bound the randomized election timeout.
	// ElectionMax > 0 enables timed mode.
	ElectionMin time.Duration
	ElectionMax time.Duration
	// GrayDetect is how long a gray leader (wrong reads) lies before the
	// detector deposes it. Zero disables detection.
	GrayDetect time.Duration
	// Seed seeds the election-timeout RNG, making timed elections
	// deterministic for a fixed fault schedule under FakeClock.
	Seed int64
}

// raftState is the per-store consensus state; guarded by the store's mu.
type raftState struct {
	clk    vclock.Clock
	tuning RaftTuning
	rng    *rand.Rand
	track  bool // record events (set once the store is cluster-attached)

	leader int // -1 while an election is pending
	term   uint64
	roles  []string

	votedFor []int    // vote cast by replica i ...
	voteTerm []uint64 // ... at this term
	deadline []time.Time

	wrongReads []bool // Byzantine: answer reads with corrupted winners
	ackDrop    []bool // Byzantine: acknowledge writes without applying
	suspect    []bool // deposed gray leaders; ineligible until cleared

	leaderLostAt time.Time
	graySince    time.Time
	events       []RaftEvent
}

func (r *raftState) init(n int) {
	r.leader = 0
	if n == 0 {
		r.leader = -1
	}
	r.term = 1
	r.roles = make([]string, n)
	for i := range r.roles {
		r.roles[i] = RoleFollower
	}
	if n > 0 {
		r.roles[0] = RoleLeader
	}
	r.votedFor = make([]int, n)
	r.voteTerm = make([]uint64, n)
	r.deadline = make([]time.Time, n)
	r.wrongReads = make([]bool, n)
	r.ackDrop = make([]bool, n)
	r.suspect = make([]bool, n)
}

func (r *raftState) timed() bool { return r.tuning.ElectionMax > 0 }

func (r *raftState) now() time.Time {
	if r.clk == nil {
		return time.Time{}
	}
	return r.clk.Now()
}

func (r *raftState) randTimeout() time.Duration {
	span := int64(r.tuning.ElectionMax - r.tuning.ElectionMin)
	if span <= 0 || r.rng == nil {
		return r.tuning.ElectionMin
	}
	return r.tuning.ElectionMin + time.Duration(r.rng.Int63n(span+1))
}

// InitRaft attaches a clock and election tuning to the store and starts
// recording leadership events. In timed mode every replica draws an
// initial election deadline; replica 0 keeps the bootstrap lease.
func (s *QuorumStore) InitRaft(clk vclock.Clock, tuning RaftTuning) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.raft.clk = clk
	s.raft.tuning = tuning
	s.raft.rng = rand.New(rand.NewSource(tuning.Seed))
	s.raft.track = true
	if s.raft.timed() {
		now := s.raft.now()
		for i := range s.raft.deadline {
			s.raft.deadline[i] = now.Add(s.raft.randTimeout())
		}
	}
}

// Leader returns the current leader replica (-1 while an election is
// pending) and the current term.
func (s *QuorumStore) Leader() (int, uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.raft.leader, s.raft.term
}

// Role returns replica i's current role.
func (s *QuorumStore) Role(i int) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if i < 0 || i >= len(s.raft.roles) {
		return ""
	}
	return s.raft.roles[i]
}

// TakeEvents drains and returns the accumulated leadership events.
func (s *QuorumStore) TakeEvents() []RaftEvent {
	s.mu.Lock()
	defer s.mu.Unlock()
	ev := s.raft.events
	s.raft.events = nil
	return ev
}

// SetWrongReads flags replica i as answering reads with corrupted,
// version-winning values. Flagging the current leader arms the gray
// detector.
func (s *QuorumStore) SetWrongReads(i int, on bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if i < 0 || i >= len(s.replicas) {
		return fmt.Errorf("cluster: %s has no replica %d", s.name, i)
	}
	s.raft.wrongReads[i] = on
	if i == s.raft.leader {
		if on {
			s.raft.graySince = s.raft.now()
		} else {
			s.raft.graySince = time.Time{}
		}
	}
	return nil
}

// SetAckDrop flags replica i as acknowledging writes without applying
// them: it stays "fresh" by applied index while silently losing data.
func (s *QuorumStore) SetAckDrop(i int, on bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if i < 0 || i >= len(s.replicas) {
		return fmt.Errorf("cluster: %s has no replica %d", s.name, i)
	}
	s.raft.ackDrop[i] = on
	return nil
}

// InjectGrayLeader flags the current leader with wrong reads and arms the
// gray detector, returning the leader index.
func (s *QuorumStore) InjectGrayLeader() (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.raft.leader < 0 {
		return -1, fmt.Errorf("cluster: %s has no leader to gray", s.name)
	}
	l := s.raft.leader
	s.raft.wrongReads[l] = true
	s.raft.graySince = s.raft.now()
	return l, nil
}

// ClearByzantine clears every wrong-reads, ack-drop, and suspect flag,
// restoring honest behaviour and re-admitting deposed replicas to
// elections.
func (s *QuorumStore) ClearByzantine() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.raft.wrongReads {
		s.raft.wrongReads[i] = false
		s.raft.ackDrop[i] = false
		s.raft.suspect[i] = false
	}
	s.raft.graySince = time.Time{}
	s.raftMembershipChangedLocked(s.raft.now())
}

// electableLocked reports whether replica i may lead: alive, fully caught
// up, and not a deposed gray leader. Callers hold mu.
func (s *QuorumStore) electableLocked(i int) bool {
	return s.alive[i] && !s.catching[i] && !s.raft.suspect[i]
}

// leaderValidLocked reports whether the current leader may keep serving:
// it must stay electable and retain an alive majority behind it. Callers
// hold mu.
func (s *QuorumStore) leaderValidLocked() bool {
	l := s.raft.leader
	return l >= 0 && s.electableLocked(l) && s.aliveCountLocked() >= len(s.replicas)/2+1
}

// raftMembershipChangedLocked reacts to replica liveness or eligibility
// changes. In instant mode it re-elects synchronously; in timed mode it
// only demotes an invalid leader — recovery waits for election timeouts
// in Tick. Callers hold mu.
func (s *QuorumStore) raftMembershipChangedLocked(now time.Time) {
	if s.leaderValidLocked() {
		return
	}
	if s.raft.leader >= 0 {
		s.leaderLostLocked(now)
	}
	if !s.raft.timed() {
		s.electInstantLocked(now)
	}
}

// leaderLostLocked records loss of the current leader. Callers hold mu.
func (s *QuorumStore) leaderLostLocked(now time.Time) {
	old := s.raft.leader
	s.raft.leader = -1
	s.raft.leaderLostAt = now
	s.raft.graySince = time.Time{}
	if old >= 0 {
		s.raft.roles[old] = RoleFollower
	}
	s.recordEventLocked(RaftEvent{Kind: RaftLeaderLost, Node: old, Term: s.raft.term, At: now})
}

// electInstantLocked hands leadership to the lowest-indexed electable
// replica when a majority is alive — the synchronous failover of instant
// mode. Callers hold mu.
func (s *QuorumStore) electInstantLocked(now time.Time) {
	if s.aliveCountLocked() < len(s.replicas)/2+1 {
		return
	}
	for i := range s.replicas {
		if s.electableLocked(i) {
			s.becomeLeaderLocked(i, now)
			return
		}
	}
}

// becomeLeaderLocked installs replica i as leader of a fresh term.
// Callers hold mu.
func (s *QuorumStore) becomeLeaderLocked(i int, now time.Time) {
	s.raft.term++
	s.raft.leader = i
	for j := range s.raft.roles {
		s.raft.roles[j] = RoleFollower
	}
	s.raft.roles[i] = RoleLeader
	if s.raft.wrongReads[i] {
		s.raft.graySince = now
	}
	var d time.Duration
	if !s.raft.leaderLostAt.IsZero() {
		d = now.Sub(s.raft.leaderLostAt)
		s.raft.leaderLostAt = time.Time{}
	}
	s.recordEventLocked(RaftEvent{Kind: RaftElected, Node: i, Term: s.raft.term, At: now, Duration: d})
	if s.raft.timed() {
		for j := range s.raft.deadline {
			s.raft.deadline[j] = now.Add(s.raft.randTimeout())
		}
	}
}

// Tick advances the timed-election machinery to now: the leader
// heartbeats follower deadlines and the gray detector checks its budget;
// without a leader, expired deadlines stand as candidates, votes are
// tallied against a majority of the total membership, and a split vote
// redraws timeouts. No-op in instant mode.
func (s *QuorumStore) Tick(now time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.raft.timed() {
		return
	}
	if s.raft.leader >= 0 {
		if d := s.raft.tuning.GrayDetect; d > 0 && !s.raft.graySince.IsZero() && now.Sub(s.raft.graySince) >= d {
			l := s.raft.leader
			s.raft.suspect[l] = true
			s.recordEventLocked(RaftEvent{
				Kind: RaftGrayDetected, Node: l, Term: s.raft.term, At: now,
				Duration: now.Sub(s.raft.graySince),
			})
			s.raft.graySince = time.Time{}
			s.leaderLostLocked(now)
			return
		}
		// Heartbeat: the live leader resets every follower's election
		// deadline, redrawing the randomized timeout.
		for i := range s.replicas {
			if s.alive[i] && i != s.raft.leader {
				s.raft.deadline[i] = now.Add(s.raft.randTimeout())
			}
		}
		return
	}
	s.electionRoundLocked(now)
}

// electionRoundLocked runs one election attempt among replicas whose
// deadlines have expired. Callers hold mu.
func (s *QuorumStore) electionRoundLocked(now time.Time) {
	var candidates []int
	for i := range s.replicas {
		if s.electableLocked(i) && !now.Before(s.raft.deadline[i]) {
			candidates = append(candidates, i)
		}
	}
	if len(candidates) == 0 {
		return
	}
	s.raft.term++
	votes := make(map[int]int, len(candidates))
	for _, c := range candidates {
		s.raft.roles[c] = RoleCandidate
		s.raft.votedFor[c] = c
		s.raft.voteTerm[c] = s.raft.term
		votes[c]++
	}
	// Every other live replica grants its single vote for this term to
	// the lowest-indexed candidate that asked (all candidates are fully
	// caught up, so the log-recency check always passes).
	for v := range s.replicas {
		if !s.alive[v] || s.raft.voteTerm[v] == s.raft.term {
			continue
		}
		s.raft.votedFor[v] = candidates[0]
		s.raft.voteTerm[v] = s.raft.term
		votes[candidates[0]]++
	}
	need := len(s.replicas)/2 + 1
	for _, c := range candidates {
		if votes[c] >= need {
			// becomeLeaderLocked opens its own term for the new leader.
			s.raft.term--
			s.becomeLeaderLocked(c, now)
			return
		}
	}
	s.recordEventLocked(RaftEvent{Kind: RaftSplitVote, Node: -1, Term: s.raft.term, At: now})
	for _, c := range candidates {
		s.raft.deadline[c] = now.Add(s.raft.randTimeout())
	}
}

func (s *QuorumStore) recordEventLocked(ev RaftEvent) {
	if !s.raft.track {
		return
	}
	ev.Store = s.name
	s.raft.events = append(s.raft.events, ev)
}

// setElectionDeadlinesForTest pins every replica's election deadline,
// letting tests force simultaneous candidacies (split votes).
func (s *QuorumStore) setElectionDeadlinesForTest(t time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.raft.deadline {
		s.raft.deadline[i] = t
	}
}

// ---- cluster-level wiring ----

// RaftConfig tunes the quorum stores' leadership behaviour from the
// cluster Config. The zero value is instant mode.
type RaftConfig struct {
	// ElectionMin/ElectionMax bound the randomized election timeout.
	// ElectionMax > 0 enables timed elections; both zero is instant mode.
	ElectionMin time.Duration
	ElectionMax time.Duration
	// Heartbeat is the raft ticker period: how often the leader refreshes
	// follower deadlines and pending elections are attempted. Defaults to
	// ElectionMin/4. Must be well under ElectionMin for stable leases.
	Heartbeat time.Duration
	// GrayDetect is the gray-leader detection budget: how long a leader
	// may serve wrong reads before being deposed. Zero disables the
	// detector. Requires timed mode (the detector runs on the ticker).
	GrayDetect time.Duration
	// Seed seeds the election-timeout RNG (offset per store), making runs
	// deterministic under FakeClock for a fixed fault schedule.
	Seed int64
}

func (r RaftConfig) timed() bool { return r.ElectionMax > 0 }

func (r RaftConfig) heartbeat() time.Duration {
	if r.Heartbeat > 0 {
		return r.Heartbeat
	}
	return r.ElectionMin / 4
}

// Validate checks the election tuning.
func (r RaftConfig) Validate() error {
	if r.ElectionMin < 0 || r.ElectionMax < 0 || r.Heartbeat < 0 || r.GrayDetect < 0 {
		return fmt.Errorf("cluster: raft durations must be >= 0")
	}
	if !r.timed() {
		if r.ElectionMin > 0 {
			return fmt.Errorf("cluster: raft ElectionMin set without ElectionMax (instant mode takes neither)")
		}
		if r.Heartbeat > 0 {
			return fmt.Errorf("cluster: raft Heartbeat requires timed mode (ElectionMax > 0)")
		}
		if r.GrayDetect > 0 {
			return fmt.Errorf("cluster: raft GrayDetect requires timed mode (ElectionMax > 0)")
		}
		return nil
	}
	if r.ElectionMin <= 0 {
		return fmt.Errorf("cluster: raft ElectionMin must be > 0 in timed mode")
	}
	if r.ElectionMax < r.ElectionMin {
		return fmt.Errorf("cluster: raft ElectionMax %v < ElectionMin %v", r.ElectionMax, r.ElectionMin)
	}
	if hb := r.heartbeat(); hb <= 0 || hb > r.ElectionMin {
		return fmt.Errorf("cluster: raft Heartbeat %v must be in (0, ElectionMin %v]", hb, r.ElectionMin)
	}
	return nil
}

// tuning derives one store's RaftTuning, offsetting the RNG seed so the
// two stores draw independent timeout streams.
func (r RaftConfig) tuning(store int64) RaftTuning {
	return RaftTuning{
		ElectionMin: r.ElectionMin,
		ElectionMax: r.ElectionMax,
		GrayDetect:  r.GrayDetect,
		Seed:        r.Seed*2 + store,
	}
}

// raftTick is the timed-election driver: it advances both stores'
// election machinery and publishes any leadership transitions.
func (c *Cluster) raftTick() {
	now := c.clk.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.configStore.Tick(now)
	c.analyticsStore.Tick(now)
	if c.drainRaftEventsLocked() {
		c.notifyLocked()
	}
}

// drainRaftEventsLocked pulls accumulated leadership events off both
// stores into telemetry, reporting whether there were any. Callers hold
// c.mu.
func (c *Cluster) drainRaftEventsLocked() bool {
	evs := c.configStore.TakeEvents()
	evs = append(evs, c.analyticsStore.TakeEvents()...)
	for _, ev := range evs {
		c.telRaftEventLocked(ev)
	}
	return len(evs) > 0
}

// storeByName resolves a quorum store from its public name.
func (c *Cluster) storeByName(name string) (*QuorumStore, error) {
	switch name {
	case "cassandra-config", "config":
		return c.configStore, nil
	case "cassandra-analytics", "analytics":
		return c.analyticsStore, nil
	}
	return nil, fmt.Errorf("cluster: unknown quorum store %q", name)
}

// StoreLeader returns the named store's current leader replica (-1 while
// an election is pending) and term. Store names are "cassandra-config"
// (or "config") and "cassandra-analytics" (or "analytics").
func (c *Cluster) StoreLeader(store string) (int, uint64, error) {
	s, err := c.storeByName(store)
	if err != nil {
		return -1, 0, err
	}
	node, term := s.Leader()
	return node, term, nil
}

// InjectGrayLeader turns the named store's current leader gray: it keeps
// its lease but answers reads with corrupted winning values until the
// detector deposes it (timed mode with GrayDetect) or the fault is
// cleared. Returns the grayed replica.
func (c *Cluster) InjectGrayLeader(store string) (int, error) {
	s, err := c.storeByName(store)
	if err != nil {
		return -1, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	node, err := s.InjectGrayLeader()
	if err != nil {
		return -1, err
	}
	c.notifyLocked()
	return node, nil
}

// SetWrongReads flags one replica of the named store as answering reads
// with corrupted values.
func (c *Cluster) SetWrongReads(store string, node int, on bool) error {
	s, err := c.storeByName(store)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := s.SetWrongReads(node, on); err != nil {
		return err
	}
	c.notifyLocked()
	return nil
}

// SetAckDrop flags one replica of the named store as acknowledging writes
// without applying them.
func (c *Cluster) SetAckDrop(store string, node int, on bool) error {
	s, err := c.storeByName(store)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := s.SetAckDrop(node, on); err != nil {
		return err
	}
	c.notifyLocked()
	return nil
}

// ClearByzantine clears every Byzantine flag on the named store.
func (c *Cluster) ClearByzantine(store string) error {
	s, err := c.storeByName(store)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	s.ClearByzantine()
	c.drainRaftEventsLocked()
	c.notifyLocked()
	return nil
}
