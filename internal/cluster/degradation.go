package cluster

import (
	"fmt"
	"time"
)

// Degradation configures the testbed's graceful-degradation behaviours —
// the softer failure policies real deployments ship instead of the
// paper's worst-case instant ones. The zero value disables all of them,
// which keeps the historical strict semantics:
//
//   - HeadlessHold: how long a vRouter agent that lost both control
//     connections keeps forwarding from its last-downloaded table before
//     flushing (Contrail/Tungsten Fabric "headless" vrouter mode). Zero
//     flushes immediately, the paper's section III behaviour.
//   - RouteMaxAge: per-route staleness bound while headless. Routes not
//     refreshed by a download within this age are dropped individually
//     before the full flush. Zero keeps all routes for the whole hold.
//     Meaningful only with HeadlessHold set.
//   - ReplicaCatchUp: anti-entropy latency for a revived quorum-store
//     replica. While it runs, the replica accepts writes but is excluded
//     from read quorums (it may serve stale versions). Zero reconciles
//     synchronously on revival.
//
// All durations are on the testbed's scaled clock, like Timing.
type Degradation struct {
	HeadlessHold   time.Duration
	RouteMaxAge    time.Duration
	ReplicaCatchUp time.Duration
}

// Validate rejects inconsistent degradation settings.
func (d Degradation) Validate() error {
	if d.HeadlessHold < 0 {
		return fmt.Errorf("cluster: HeadlessHold must be >= 0, got %v", d.HeadlessHold)
	}
	if d.RouteMaxAge < 0 {
		return fmt.Errorf("cluster: RouteMaxAge must be >= 0, got %v", d.RouteMaxAge)
	}
	if d.RouteMaxAge > 0 && d.HeadlessHold == 0 {
		return fmt.Errorf("cluster: RouteMaxAge requires HeadlessHold > 0")
	}
	if d.ReplicaCatchUp < 0 {
		return fmt.Errorf("cluster: ReplicaCatchUp must be >= 0, got %v", d.ReplicaCatchUp)
	}
	return nil
}
