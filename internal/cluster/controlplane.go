package cluster

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"sdnavail/internal/profile"
)

// This file implements the Config, Control and Analytics role behavior:
// the northbound configuration path (config-api → zookeeper ID → Cassandra
// quorum write → schema transformer → IF-MAP publish → control nodes), the
// BGP-style control mesh, DNS, and the analytics pipeline (collector →
// redis/Cassandra/Kafka → query-engine/alarm-gen).

const ifmapTopic = "ifmap"

// configUpdate is the low-level object pushed southbound to control nodes.
type configUpdate struct {
	ID      uint64
	Kind    string // "network" or "policy"
	Name    string
	Payload string
	Prefix  string // policy target prefix
	Allow   bool   // policy verdict
}

// controlNode is the per-node control process state: the applied
// configuration version and the BGP routing table (prefix → next-hop set).
type controlNode struct {
	c    *Cluster
	node int
	sub  *Subscription

	cfgVersion uint64
	routes     map[string]map[string]bool
	policies   map[string]bool // security policy per destination prefix (absent = allow)
	wasAlive   bool            // tracks crash/restart transitions for state loss and BGP resync
	wasUsable  bool            // tracks partition transitions for mesh catch-up
}

func newControlNode(c *Cluster, node int) *controlNode {
	return &controlNode{
		c: c, node: node,
		routes:   map[string]map[string]bool{},
		policies: map[string]bool{},
		wasAlive: true, wasUsable: true,
	}
}

// start subscribes the control node to the IF-MAP topic and launches its
// consumer loop.
func (ctl *controlNode) start() error {
	sub, err := ctl.c.bus.Subscribe(ifmapTopic, fmt.Sprintf("control-%d", ctl.node), 128)
	if err != nil {
		return err
	}
	ctl.sub = sub
	ctl.c.loops.Add(1)
	ctl.c.clk.Register()
	go func() {
		defer ctl.c.loops.Done()
		defer ctl.c.clk.Unregister()
		for {
			// The consumer blocks on the bus, not on the clock, so it
			// parks explicitly: a fake clock may advance past it while it
			// has nothing to consume.
			unpark := ctl.c.clk.Park()
			select {
			case <-ctl.c.stopAll:
				unpark()
				return
			case m, ok := <-sub.C():
				unpark()
				if !ok {
					return
				}
				upd, ok := m.Payload.(configUpdate)
				if !ok {
					sub.Done()
					continue
				}
				ctl.c.mu.Lock()
				// A dead or partitioned control process does not consume
				// configuration; it catches up from a BGP peer later.
				if ctl.c.usableLocked(ctl.key()) && upd.ID > ctl.cfgVersion {
					ctl.cfgVersion = upd.ID
					if upd.Kind == "policy" {
						ctl.policies[upd.Prefix] = upd.Allow
					}
					ctl.c.notifyLocked()
				}
				ctl.c.mu.Unlock()
				// Acknowledge only after the update (and any waiter
				// notification) is applied, so a fake clock cannot advance
				// between delivery and effect.
				sub.Done()
			}
		}
	}()
	return nil
}

func (ctl *controlNode) key() procKey {
	return procKey{role: string(profile.Control), node: ctl.node, name: "control"}
}

// resyncLocked merges configuration version, routes and policies from
// every alive peer control on the same side of any partition — the BGP
// refresh a restarting or rejoining control performs. Merging from all
// reachable peers (not just the first) matters when the peers themselves
// are still converging: configuration consumption is asynchronous, so at
// any instant one peer may hold updates another has not applied yet.
// Callers hold c.mu.
func (ctl *controlNode) resyncLocked() {
	for _, peer := range ctl.c.controls {
		if peer.node == ctl.node || !ctl.c.aliveLocked(peer.key()) {
			continue
		}
		if !ctl.c.meshConnectedLocked(peer.node, ctl.node) {
			continue // a partition or link cut separates us
		}
		if peer.cfgVersion > ctl.cfgVersion {
			ctl.cfgVersion = peer.cfgVersion
		}
		for prefix, hops := range peer.routes {
			dst := ctl.routes[prefix]
			if dst == nil {
				dst = map[string]bool{}
				ctl.routes[prefix] = dst
			}
			for h := range hops {
				dst[h] = true
			}
		}
		for prefix, allow := range peer.policies {
			ctl.policies[prefix] = allow
		}
	}
}

// advertiseLocked installs an agent's prefix on this control and floods it
// to alive mesh peers. Callers hold c.mu.
func (ctl *controlNode) advertiseLocked(prefix, nexthop string) {
	install := func(t *controlNode) {
		hops := t.routes[prefix]
		if hops == nil {
			hops = map[string]bool{}
			t.routes[prefix] = hops
		}
		hops[nexthop] = true
	}
	install(ctl)
	for _, peer := range ctl.c.controls {
		if peer.node != ctl.node && ctl.c.aliveLocked(peer.key()) &&
			ctl.c.meshConnectedLocked(peer.node, ctl.node) {
			install(peer)
		}
	}
}

// withdrawLocked removes an agent's prefix from this control and its alive
// peers. Callers hold c.mu.
func (ctl *controlNode) withdrawLocked(prefix, nexthop string) {
	remove := func(t *controlNode) {
		if hops, ok := t.routes[prefix]; ok {
			delete(hops, nexthop)
			if len(hops) == 0 {
				delete(t.routes, prefix)
			}
		}
	}
	remove(ctl)
	for _, peer := range ctl.c.controls {
		if peer.node != ctl.node && ctl.c.aliveLocked(peer.key()) &&
			ctl.c.meshConnectedLocked(peer.node, ctl.node) {
			remove(peer)
		}
	}
}

// ---- northbound configuration path ----

// CreateNetwork performs a full northbound create: it requires an alive
// config-api, a Zookeeper quorum for the unique ID, a Cassandra (Config)
// quorum for persistence, an alive schema transformer, and an alive IF-MAP
// server to push the low-level object southbound. It returns the allocated
// ID.
func (c *Cluster) CreateNetwork(name, subnet string) (uint64, error) {
	c.mu.Lock()
	cfgRole := string(profile.Config)
	if c.anyAliveLocked(cfgRole, "config-api") < 0 {
		c.mu.Unlock()
		return 0, fmt.Errorf("cluster: no config-api instance alive")
	}
	id, err := c.seq.Next()
	if err != nil {
		c.mu.Unlock()
		return 0, fmt.Errorf("cluster: allocating network ID: %w", err)
	}
	if err := c.configStore.Put("net/"+name, subnet); err != nil {
		c.mu.Unlock()
		return 0, fmt.Errorf("cluster: persisting network: %w", err)
	}
	if c.anyAliveLocked(cfgRole, "schema") < 0 {
		c.mu.Unlock()
		return 0, fmt.Errorf("cluster: no schema transformer alive")
	}
	low := fmt.Sprintf("obj:%s:%s:id=%d", name, subnet, id)
	if err := c.configStore.Put("obj/"+name, low); err != nil {
		c.mu.Unlock()
		return 0, fmt.Errorf("cluster: persisting low-level object: %w", err)
	}
	if c.anyAliveLocked(cfgRole, "ifmap") < 0 {
		c.mu.Unlock()
		return 0, fmt.Errorf("cluster: no ifmap server alive")
	}
	c.mu.Unlock()
	c.bus.Publish(Message{Topic: ifmapTopic, From: "ifmap", Payload: configUpdate{ID: id, Kind: "network", Name: name, Payload: low}})
	return id, nil
}

// SetPolicy installs a security policy verdict for traffic toward the
// given destination prefix through the full northbound path: config-api,
// unique ID, Cassandra quorum persistence, schema transformation, IF-MAP
// southbound push. Control nodes apply it and vRouter agents download it
// with their routes; forwarding then enforces it (the vRouter agent
// "performs all policy evaluation", §II). Absent a policy, traffic is
// allowed.
func (c *Cluster) SetPolicy(dstPrefix string, allow bool) (uint64, error) {
	c.mu.Lock()
	cfgRole := string(profile.Config)
	if c.anyAliveLocked(cfgRole, "config-api") < 0 {
		c.mu.Unlock()
		return 0, fmt.Errorf("cluster: no config-api instance alive")
	}
	id, err := c.seq.Next()
	if err != nil {
		c.mu.Unlock()
		return 0, fmt.Errorf("cluster: allocating policy ID: %w", err)
	}
	verdict := "deny"
	if allow {
		verdict = "allow"
	}
	if err := c.configStore.Put("policy/"+dstPrefix, verdict); err != nil {
		c.mu.Unlock()
		return 0, fmt.Errorf("cluster: persisting policy: %w", err)
	}
	if c.anyAliveLocked(cfgRole, "schema") < 0 {
		c.mu.Unlock()
		return 0, fmt.Errorf("cluster: no schema transformer alive")
	}
	if c.anyAliveLocked(cfgRole, "ifmap") < 0 {
		c.mu.Unlock()
		return 0, fmt.Errorf("cluster: no ifmap server alive")
	}
	c.mu.Unlock()
	c.bus.Publish(Message{Topic: ifmapTopic, From: "ifmap", Payload: configUpdate{
		ID: id, Kind: "policy", Name: "policy:" + dstPrefix, Prefix: dstPrefix, Allow: allow,
	}})
	return id, nil
}

// ConfigVersionReached reports whether at least one alive control node has
// applied configuration at or beyond the given ID.
func (c *Cluster) ConfigVersionReached(id uint64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, ctl := range c.controls {
		if c.usableLocked(ctl.key()) && ctl.cfgVersion >= id {
			return true
		}
	}
	return false
}

// GetNetwork reads a persisted network back through any alive config-api.
func (c *Cluster) GetNetwork(name string) (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.anyAliveLocked(string(profile.Config), "config-api") < 0 {
		return "", fmt.Errorf("cluster: no config-api instance alive")
	}
	v, ok, err := c.configStore.Get("net/" + name)
	if err != nil {
		return "", err
	}
	if !ok {
		return "", fmt.Errorf("cluster: network %q not found", name)
	}
	return v, nil
}

// ---- analytics pipeline ----

// SendUVE delivers an operational data record to the analytics pipeline:
// an alive collector stages it in its node-local redis (when alive),
// persists it to the analytics Cassandra quorum, and streams an event to
// Kafka.
func (c *Cluster) SendUVE(key, value string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	an := string(profile.Analytics)
	node := c.anyAliveLocked(an, "collector")
	if node < 0 {
		return fmt.Errorf("cluster: no collector alive")
	}
	// The collector stages real-time data in any alive Redis cache
	// (Table I: redis is a "1 of 3" control-plane process).
	if cache := c.anyAliveLocked(an, "redis"); cache >= 0 {
		c.redis[cache][key] = value
	}
	if err := c.analyticsStore.Put("uve/"+key, value); err != nil {
		return fmt.Errorf("cluster: persisting UVE: %w", err)
	}
	if _, err := c.log.Append("uve:" + key); err != nil {
		return fmt.Errorf("cluster: streaming event: %w", err)
	}
	return nil
}

// QueryAnalytics reads a persisted record through an alive analytics-api
// and query-engine pair.
func (c *Cluster) QueryAnalytics(key string) (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	an := string(profile.Analytics)
	if c.anyAliveLocked(an, "analytics-api") < 0 {
		return "", fmt.Errorf("cluster: no analytics-api alive")
	}
	if c.anyAliveLocked(an, "query-engine") < 0 {
		return "", fmt.Errorf("cluster: no query-engine alive")
	}
	v, ok, err := c.analyticsStore.Get("uve/" + key)
	if err != nil {
		return "", err
	}
	if !ok {
		return "", fmt.Errorf("cluster: UVE %q not found", key)
	}
	return v, nil
}

// QueryRealtime reads a record from any alive redis cache holding it.
func (c *Cluster) QueryRealtime(key string) (string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	an := string(profile.Analytics)
	for node := range c.redis {
		if c.aliveLocked(procKey{role: an, node: node, name: "redis"}) {
			if v, ok := c.redis[node][key]; ok {
				return v, true
			}
		}
	}
	return "", false
}

// GenerateAlarms has an alive alarm-gen scan the Kafka stream and returns
// the number of matching events.
func (c *Cluster) GenerateAlarms(substr string) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.anyAliveLocked(string(profile.Analytics), "alarm-gen") < 0 {
		return 0, fmt.Errorf("cluster: no alarm-gen alive")
	}
	entries, err := c.log.ReadFrom(0)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, e := range entries {
		if strings.Contains(e, substr) {
			n++
		}
	}
	return n, nil
}

// ---- control-plane probe ----

// ProbeCP exercises every SDN control-plane requirement end to end: the
// auxiliary Config services (discovery, svc-monitor, device-manager), a
// full northbound network create, southbound propagation to at least one
// control node, and the analytics write/query/alarm path. It returns nil
// when the control plane is fully functional.
func (c *Cluster) ProbeCP(timeout time.Duration) error {
	c.mu.Lock()
	cfgRole := string(profile.Config)
	for _, name := range []string{"discovery", "svc-monitor", "device-manager"} {
		if c.anyAliveLocked(cfgRole, name) < 0 {
			c.mu.Unlock()
			return fmt.Errorf("cluster: no %s alive", name)
		}
	}
	c.probeSeq++
	probe := fmt.Sprintf("probe-%d", c.probeSeq)
	c.mu.Unlock()

	id, err := c.CreateNetwork(probe, "10.255.0.0/24")
	if err != nil {
		return err
	}
	if !c.WaitUntil(timeout, func() bool { return c.ConfigVersionReached(id) }) {
		return fmt.Errorf("cluster: no control node applied config %d within %v", id, timeout)
	}
	// Read-back integrity: the network just written must read back with
	// the value written. A quorum that answers — but answers wrongly
	// (Byzantine replicas) or has silently lost the write (ack-drop) — is
	// downtime a binary up/down check would never see.
	switch got, err := c.GetNetwork(probe); {
	case err != nil && errors.Is(err, ErrNoQuorum):
		return err
	case err != nil:
		return fmt.Errorf("cluster: probe read-back integrity: %w", err)
	case got != "10.255.0.0/24":
		return fmt.Errorf("cluster: probe read-back integrity: network %q = %q, want %q", probe, got, "10.255.0.0/24")
	}
	if err := c.SendUVE(probe, "ok"); err != nil {
		return err
	}
	if _, err := c.QueryAnalytics(probe); err != nil {
		return err
	}
	if _, ok := c.QueryRealtime(probe); !ok {
		return fmt.Errorf("cluster: real-time analytics cache unavailable")
	}
	if _, err := c.GenerateAlarms(probe); err != nil {
		return err
	}
	return nil
}
