package cluster

import (
	"strings"
	"testing"
	"time"

	"sdnavail/internal/profile"
	"sdnavail/internal/topology"
)

// newSupervisedCluster boots a Small-topology testbed with a custom
// supervision policy (and default timing).
func newSupervisedCluster(t *testing.T, sup Supervision) *Cluster {
	t.Helper()
	prof := profile.OpenContrail3x()
	topo, err := topology.ByKind(topology.Small, prof.ClusterRoles, 3)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(Config{Profile: prof, Topology: topo, ComputeHosts: 3, Supervision: sup})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	return c
}

// procState fetches a process's state from the public snapshot.
func procState(t *testing.T, c *Cluster, role string, node int, name string) ProcState {
	t.Helper()
	for _, st := range c.Snapshot() {
		if st.Role == role && st.Node == node && st.Name == name {
			return st.State
		}
	}
	t.Fatalf("no process %s/%d/%s in snapshot", role, node, name)
	return 0
}

// procStatus fetches a process's full status from the public snapshot.
func procStatus(t *testing.T, c *Cluster, role string, node int, name string) ProcStatus {
	t.Helper()
	for _, st := range c.Snapshot() {
		if st.Role == role && st.Node == node && st.Name == name {
			return st
		}
	}
	t.Fatalf("no process %s/%d/%s in snapshot", role, node, name)
	return ProcStatus{}
}

// TestCrashLoopExhaustsRetryBudget walks the full supervision ladder: a
// process that dies right after every supervised restart burns through the
// retry budget and goes Fatal; the supervisor then leaves it alone; Health
// names it; a manual restart recovers it with a fresh budget.
func TestCrashLoopExhaustsRetryBudget(t *testing.T) {
	sup := Supervision{
		StartRetries:    2,
		BackoffBase:     2 * time.Millisecond,
		BackoffMax:      8 * time.Millisecond,
		QuickFailWindow: 2 * time.Second, // every post-restart crash counts
		FlapWindow:      time.Millisecond,
		FlapThreshold:   100, // flap detection out of the way
		JitterSeed:      1,
	}
	c := newSupervisedCluster(t, sup)
	const role, node, name = "Config", 0, "config-api"

	// Crash the process every time it comes back. First crash is free
	// (no preceding supervised restart); each of the next kills lands
	// within QuickFailWindow of a supervised restart and burns budget;
	// after StartRetries+1 quick failures the supervisor gives up.
	kills := 0
	for kills < sup.StartRetries+2 {
		if !c.WaitUntil(waitLong, func() bool { return c.Alive(role, node, name) }) {
			t.Fatalf("process did not come back before kill %d", kills+1)
		}
		if err := c.KillProcess(role, node, name); err != nil {
			t.Fatal(err)
		}
		kills++
	}
	if got := procState(t, c, role, node, name); got != Fatal {
		t.Fatalf("state after exhausting retry budget = %v, want Fatal", got)
	}

	// The supervisor must not resurrect a Fatal process.
	time.Sleep(50 * time.Millisecond)
	if c.Alive(role, node, name) {
		t.Fatal("supervisor restarted a Fatal process")
	}
	st := procStatus(t, c, role, node, name)
	if want := sup.StartRetries + 1; st.Restarts != want {
		t.Errorf("restarts = %d, want %d (one per budget attempt)", st.Restarts, want)
	}

	// Health reports the Fatal process by name.
	rep := c.Health()
	if rep.Level != Degraded {
		t.Fatalf("health level = %v, want Degraded\n%s", rep.Level, rep)
	}
	found := false
	for _, p := range rep.FatalProcs {
		if p == "Config/0/config-api" {
			found = true
		}
	}
	if !found {
		t.Fatalf("FatalProcs = %v, want Config/0/config-api listed", rep.FatalProcs)
	}

	// Manual restart clears Fatal and restores service.
	if err := c.RestartProcess(role, node, name); err != nil {
		t.Fatal(err)
	}
	if !c.Alive(role, node, name) {
		t.Fatal("manual restart did not revive the Fatal process")
	}
	if rep := c.Health(); len(rep.FatalProcs) != 0 {
		t.Fatalf("FatalProcs after manual restart = %v, want none", rep.FatalProcs)
	}
	// The budget is fresh: a single crash must be supervised again.
	if err := c.KillProcess(role, node, name); err != nil {
		t.Fatal(err)
	}
	if !c.WaitUntil(waitLong, func() bool { return c.Alive(role, node, name) }) {
		t.Fatal("supervisor did not restart the process after manual recovery")
	}
}

// TestFlappingProcessGoesFatal drives the flap detector: crashes spaced
// too far apart to count as failed start attempts still trip FlapThreshold
// within FlapWindow.
func TestFlappingProcessGoesFatal(t *testing.T) {
	sup := Supervision{
		StartRetries:    100, // budget path out of the way
		BackoffBase:     time.Millisecond,
		BackoffMax:      time.Millisecond,
		QuickFailWindow: time.Nanosecond, // nothing counts as a quick fail
		FlapWindow:      10 * time.Second,
		FlapThreshold:   3,
		JitterSeed:      1,
	}
	c := newSupervisedCluster(t, sup)
	const role, node, name = "Control", 1, "control"

	for i := 0; i < sup.FlapThreshold; i++ {
		if !c.WaitUntil(waitLong, func() bool { return c.Alive(role, node, name) }) {
			t.Fatalf("process did not come back before crash %d", i+1)
		}
		if err := c.KillProcess(role, node, name); err != nil {
			t.Fatal(err)
		}
	}
	if got := procState(t, c, role, node, name); got != Fatal {
		t.Fatalf("state after %d crashes in the flap window = %v, want Fatal", sup.FlapThreshold, got)
	}

	// RestartNodeRole (bouncing the whole supervised role) also clears
	// Fatal: the fresh supervisor restarts the children.
	if err := c.RestartNodeRole(role, node); err != nil {
		t.Fatal(err)
	}
	if !c.WaitUntil(waitLong, func() bool { return c.Alive(role, node, name) }) {
		t.Fatalf("node-role restart did not revive the flapping process (state %v)",
			procState(t, c, role, node, name))
	}
}

// TestSupervisorDiesWhileRestartInFlight kills the supervisor during the
// AutoRestart delay: the in-flight restart must observe the dead
// supervisor at commit time and leave the child down.
func TestSupervisorDiesWhileRestartInFlight(t *testing.T) {
	prof := profile.OpenContrail3x()
	topo, err := topology.ByKind(topology.Small, prof.ClusterRoles, 3)
	if err != nil {
		t.Fatal(err)
	}
	timing := DefaultTiming()
	timing.AutoRestart = 150 * time.Millisecond // a wide in-flight window
	c, err := New(Config{Profile: prof, Topology: topo, ComputeHosts: 3, Timing: timing})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)

	const role, node, name = "Control", 0, "control"
	if err := c.KillProcess(role, node, name); err != nil {
		t.Fatal(err)
	}
	// Give the supervisor a couple of scan ticks to pick the child up and
	// enter its AutoRestart sleep, then kill the supervisor mid-flight.
	time.Sleep(30 * time.Millisecond)
	if err := c.KillProcess(role, node, "supervisor-control"); err != nil {
		t.Fatal(err)
	}
	// Well past the restart deadline the child must still be down: the
	// commit-phase re-check saw the dead supervisor.
	time.Sleep(300 * time.Millisecond)
	if c.Alive(role, node, name) {
		t.Fatal("child restarted by a supervisor that died mid-restart")
	}
	if got := procStatus(t, c, role, node, name).Restarts; got != 0 {
		t.Fatalf("restarts = %d, want 0", got)
	}
}

// TestRestartStormCounters checks the diagnostics counters across a storm
// of supervised restarts and one unsupervised failure.
func TestRestartStormCounters(t *testing.T) {
	sup := DefaultSupervision()
	sup.StartRetries = 1000 // storms must not trip the ladder here
	sup.FlapThreshold = 1000
	c := newSupervisedCluster(t, sup)
	const role, node, name = "Config", 1, "schema"

	const storms = 8
	for i := 0; i < storms; i++ {
		if !c.WaitUntil(waitLong, func() bool { return c.Alive(role, node, name) }) {
			t.Fatalf("process not back before storm kill %d", i+1)
		}
		if err := c.KillProcess(role, node, name); err != nil {
			t.Fatal(err)
		}
	}
	if !c.WaitUntil(waitLong, func() bool { return c.Alive(role, node, name) }) {
		t.Fatal("process did not recover after the storm")
	}
	st := procStatus(t, c, role, node, name)
	if st.Restarts != storms {
		t.Errorf("restarts = %d, want %d", st.Restarts, storms)
	}
	if st.Unsupervised != 0 {
		t.Errorf("unsupervised = %d, want 0 (supervisor was up throughout)", st.Unsupervised)
	}

	// Now fail it with the supervisor down: the unsupervised counter must
	// tick and the process must stay down.
	if err := c.KillProcess(role, node, "supervisor-config"); err != nil {
		t.Fatal(err)
	}
	if err := c.KillProcess(role, node, name); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if c.Alive(role, node, name) {
		t.Fatal("process restarted with its supervisor dead")
	}
	st = procStatus(t, c, role, node, name)
	if st.Unsupervised != 1 {
		t.Errorf("unsupervised = %d, want 1", st.Unsupervised)
	}
	if st.Restarts != storms {
		t.Errorf("restarts = %d, want still %d", st.Restarts, storms)
	}
}

// TestHostRebootClearsFatal: FATAL does not survive a supervisord restart
// — rebooting the host boots a fresh supervisor with clean state, and the
// child comes back under supervision.
func TestHostRebootClearsFatal(t *testing.T) {
	sup := DefaultSupervision()
	sup.FlapThreshold = 1 // any crash goes straight to Fatal
	c := newSupervisedCluster(t, sup)
	const role, node, name = "Config", 0, "config-api"

	if err := c.KillProcess(role, node, name); err != nil {
		t.Fatal(err)
	}
	if got := procState(t, c, role, node, name); got != Fatal {
		t.Fatalf("state = %v, want Fatal (FlapThreshold=1)", got)
	}
	// H1 hosts controller node 0 in the Small topology.
	if err := c.KillHost("H1"); err != nil {
		t.Fatal(err)
	}
	if err := c.RestoreHost("H1"); err != nil {
		t.Fatal(err)
	}
	if !c.WaitUntil(waitLong, func() bool { return c.Alive(role, node, name) }) {
		t.Fatalf("process did not return after host reboot (state %v)", procState(t, c, role, node, name))
	}
}

// TestSupervisionValidation rejects out-of-range policies.
func TestSupervisionValidation(t *testing.T) {
	bad := []Supervision{
		{StartRetries: -1, BackoffBase: 1, BackoffMax: 1, QuickFailWindow: 1, FlapWindow: 1, FlapThreshold: 1},
		{StartRetries: 1, BackoffBase: 0, BackoffMax: 1, QuickFailWindow: 1, FlapWindow: 1, FlapThreshold: 1},
		{StartRetries: 1, BackoffBase: 2, BackoffMax: 1, QuickFailWindow: 1, FlapWindow: 1, FlapThreshold: 1},
		{StartRetries: 1, BackoffBase: 1, BackoffMax: 1, QuickFailWindow: 1, FlapWindow: 1, FlapThreshold: 0},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, s)
		}
	}
	if err := DefaultSupervision().Validate(); err != nil {
		t.Errorf("DefaultSupervision invalid: %v", err)
	}
}

// TestHealthReportLevels spot-checks the subsystem ladder: healthy at
// boot, degraded on bare quorum, critical on quorum loss.
func TestHealthReportLevels(t *testing.T) {
	c := newTestCluster(t, topology.Small)
	if rep := c.Health(); rep.Level != Healthy {
		t.Fatalf("boot health = %v, want Healthy\n%s", rep.Level, rep)
	}

	// One Config-Cassandra replica down: bare quorum, Degraded.
	if err := c.KillProcess("Database", 0, "cassandra-db (Config)"); err != nil {
		t.Fatal(err)
	}
	rep := c.Health()
	if rep.Level != Degraded {
		t.Fatalf("health with one replica down = %v, want Degraded\n%s", rep.Level, rep)
	}
	if !strings.Contains(rep.String(), "bare quorum") {
		t.Fatalf("report does not mention bare quorum:\n%s", rep)
	}

	// Two replicas down: quorum lost, Critical.
	if err := c.KillProcess("Database", 1, "cassandra-db (Config)"); err != nil {
		t.Fatal(err)
	}
	rep = c.Health()
	if rep.Level != Critical {
		t.Fatalf("health with quorum lost = %v, want Critical\n%s", rep.Level, rep)
	}

	// Repair both: back to Healthy.
	for node := 0; node < 2; node++ {
		if err := c.RestartProcess("Database", node, "cassandra-db (Config)"); err != nil {
			t.Fatal(err)
		}
	}
	if rep := c.Health(); rep.Level != Healthy {
		t.Fatalf("health after repair = %v, want Healthy\n%s", rep.Level, rep)
	}
}
