package cluster

import (
	"strings"
	"testing"
	"time"

	"sdnavail/internal/profile"
	"sdnavail/internal/topology"
)

const waitLong = 5 * time.Second

// newTestCluster boots a Small-topology testbed with 3 compute hosts.
func newTestCluster(t *testing.T, kind topology.Kind) *Cluster {
	t.Helper()
	prof := profile.OpenContrail3x()
	topo, err := topology.ByKind(kind, prof.ClusterRoles, 3)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(Config{Profile: prof, Topology: topo, ComputeHosts: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	return c
}

// killSupervisors kills every Control-role supervisor so that control
// process failures persist (unsupervised mode) during a test.
func killControlSupervisors(t *testing.T, c *Cluster) {
	t.Helper()
	for node := 0; node < 3; node++ {
		if err := c.KillProcess("Control", node, "supervisor-control"); err != nil {
			t.Fatal(err)
		}
	}
}

func TestHealthyClusterProbes(t *testing.T) {
	c := newTestCluster(t, topology.Small)
	if !c.WaitUntil(waitLong, func() bool { return c.ProbeCP(waitLong) == nil }) {
		t.Fatalf("CP probe failed on a healthy cluster: %v", c.ProbeCP(time.Second))
	}
	ok := c.WaitUntil(waitLong, func() bool {
		for h := 0; h < c.ComputeHostCount(); h++ {
			if c.ProbeDP(h) != nil {
				return false
			}
		}
		return true
	})
	if !ok {
		t.Fatalf("DP probes failed on a healthy cluster: %v", c.ProbeDP(0))
	}
}

func TestAgentsConnectToTwoControlsRoundRobin(t *testing.T) {
	c := newTestCluster(t, topology.Small)
	ok := c.WaitUntil(waitLong, func() bool {
		for h := 0; h < 3; h++ {
			conns, err := c.AgentConnections(h)
			if err != nil || len(conns) != 2 || conns[0] == conns[1] {
				return false
			}
		}
		return true
	})
	if !ok {
		t.Fatal("agents did not establish two distinct control connections")
	}
	// Round-robin spread: every control node serves some agent.
	load := map[int]int{}
	for h := 0; h < 3; h++ {
		conns, _ := c.AgentConnections(h)
		for _, n := range conns {
			load[n]++
		}
	}
	if len(load) != 3 {
		t.Errorf("connection load %v should cover all three control nodes", load)
	}
}

// TestControlFailover replays section III's narrative: kill control-1 and
// every agent rediscovers the unused control; kill control-2 and agents
// hold a single connection but forwarding continues; kill control-3 and
// every host DP goes down because forwarding tables are flushed.
func TestControlFailover(t *testing.T) {
	c := newTestCluster(t, topology.Small)
	killControlSupervisors(t, c)

	if err := c.KillProcess("Control", 0, "control"); err != nil {
		t.Fatal(err)
	}
	ok := c.WaitUntil(waitLong, func() bool {
		for h := 0; h < 3; h++ {
			conns, _ := c.AgentConnections(h)
			if len(conns) != 2 {
				return false
			}
			for _, n := range conns {
				if n == 0 {
					return false
				}
			}
		}
		return true
	})
	if !ok {
		t.Fatal("agents did not fail over to controls 1 and 2")
	}
	for h := 0; h < 3; h++ {
		if err := c.ProbeDP(h); err != nil {
			t.Errorf("DP down after one control failure: %v", err)
		}
	}

	if err := c.KillProcess("Control", 1, "control"); err != nil {
		t.Fatal(err)
	}
	ok = c.WaitUntil(waitLong, func() bool {
		for h := 0; h < 3; h++ {
			conns, _ := c.AgentConnections(h)
			if len(conns) != 1 || conns[0] != 2 {
				return false
			}
		}
		return true
	})
	if !ok {
		t.Fatal("agents did not converge on the last control")
	}
	for h := 0; h < 3; h++ {
		if err := c.ProbeDP(h); err != nil {
			t.Errorf("DP down with one control still alive: %v", err)
		}
	}

	if err := c.KillProcess("Control", 2, "control"); err != nil {
		t.Fatal(err)
	}
	ok = c.WaitUntil(waitLong, func() bool {
		for h := 0; h < 3; h++ {
			if c.ProbeDP(h) == nil {
				return false
			}
		}
		return true
	})
	if !ok {
		t.Fatal("host DPs should be down after the last control failure (BGP tables flushed)")
	}
	if err := c.ProbeDP(0); err == nil || !strings.Contains(err.Error(), "flushed") {
		t.Errorf("DP failure should report a flushed forwarding table, got: %v", err)
	}

	// Recovery: manually restart one control; agents reconnect and DPs
	// return without restarting the vRouter processes.
	if err := c.RestartProcess("Control", 1, "control"); err != nil {
		t.Fatal(err)
	}
	ok = c.WaitUntil(waitLong, func() bool {
		for h := 0; h < 3; h++ {
			if c.ProbeDP(h) != nil {
				return false
			}
		}
		return true
	})
	if !ok {
		t.Fatal("host DPs did not recover after a control returned")
	}
}

// TestSupervisorAutoRestart: a failed process under a live supervisor
// returns automatically.
func TestSupervisorAutoRestart(t *testing.T) {
	c := newTestCluster(t, topology.Small)
	if err := c.KillProcess("Config", 0, "config-api"); err != nil {
		t.Fatal(err)
	}
	if !c.WaitUntil(waitLong, func() bool { return c.Alive("Config", 0, "config-api") }) {
		t.Fatal("supervisor did not auto-restart config-api")
	}
}

// TestUnsupervisedModeRequiresManualRestart: with the supervisor dead, a
// failed process stays down ("0 of 3" supervisor: functionality unimpaired
// via the other nodes), until a manual restart or node-role restart.
func TestUnsupervisedModeRequiresManualRestart(t *testing.T) {
	c := newTestCluster(t, topology.Small)
	if err := c.KillProcess("Config", 0, "supervisor-config"); err != nil {
		t.Fatal(err)
	}
	if err := c.KillProcess("Config", 0, "config-api"); err != nil {
		t.Fatal(err)
	}
	// Give the (dead) supervisor ample opportunity to wrongly restart it.
	time.Sleep(20 * DefaultTiming().SupervisorCheck)
	if c.Alive("Config", 0, "config-api") {
		t.Fatal("config-api restarted despite a dead supervisor")
	}
	// The control plane is unimpaired: config-api is 1 of 3.
	if err := c.ProbeCP(waitLong); err != nil {
		t.Errorf("CP should survive one unsupervised node-role: %v", err)
	}
	// Manual node-role restart: children killed, supervisor restarted,
	// children auto-restarted under its oversight.
	if err := c.RestartNodeRole("Config", 0); err != nil {
		t.Fatal(err)
	}
	if !c.WaitUntil(waitLong, func() bool {
		return c.Alive("Config", 0, "config-api") && c.Alive("Config", 0, "supervisor-config")
	}) {
		t.Fatal("node-role restart did not restore the role")
	}
}

// TestNodemgrLossOnlyAffectsVisibility: killing a nodemgr loses process
// state visibility but impairs nothing.
func TestNodemgrLossOnlyAffectsVisibility(t *testing.T) {
	c := newTestCluster(t, topology.Small)
	if !c.StatusVisibility("Control", 1) {
		t.Fatal("visibility should start true")
	}
	// Kill the supervisor first so the nodemgr is not auto-restarted.
	if err := c.KillProcess("Control", 1, "supervisor-control"); err != nil {
		t.Fatal(err)
	}
	if err := c.KillProcess("Control", 1, "nodemgr-control"); err != nil {
		t.Fatal(err)
	}
	if c.StatusVisibility("Control", 1) {
		t.Error("visibility should be lost with the nodemgr down")
	}
	if err := c.ProbeCP(waitLong); err != nil {
		t.Errorf("CP impaired by a nodemgr failure: %v", err)
	}
	if err := c.ProbeDP(0); err != nil {
		t.Errorf("DP impaired by a nodemgr failure: %v", err)
	}
}

// TestDatabaseQuorumLossTakesDownCPOnly: losing 2 of 3 of any Database
// process halts the control plane; host data planes keep forwarding.
func TestDatabaseQuorumLossTakesDownCPOnly(t *testing.T) {
	c := newTestCluster(t, topology.Small)
	if err := c.KillProcess("Database", 0, "cassandra-db (Config)"); err != nil {
		t.Fatal(err)
	}
	if err := c.ProbeCP(waitLong); err != nil {
		t.Fatalf("CP should survive one Database replica loss: %v", err)
	}
	if err := c.KillProcess("Database", 1, "cassandra-db (Config)"); err != nil {
		t.Fatal(err)
	}
	// Database processes are manual-restart: they must stay down.
	time.Sleep(20 * DefaultTiming().SupervisorCheck)
	if c.Alive("Database", 0, "cassandra-db (Config)") {
		t.Fatal("manual-restart cassandra came back by itself")
	}
	if err := c.ProbeCP(500 * time.Millisecond); err == nil {
		t.Fatal("CP should be down without a Cassandra quorum")
	}
	for h := 0; h < 3; h++ {
		if err := c.ProbeDP(h); err != nil {
			t.Errorf("host DP should survive a Database quorum loss: %v", err)
		}
	}
	// Operator repairs one replica: quorum and CP return.
	if err := c.RestartProcess("Database", 0, "cassandra-db (Config)"); err != nil {
		t.Fatal(err)
	}
	if err := c.ProbeCP(waitLong); err != nil {
		t.Errorf("CP did not recover after quorum repair: %v", err)
	}
}

// TestZookeeperQuorumGatesIDs: without a Zookeeper majority, network
// creation fails at ID allocation.
func TestZookeeperQuorumGatesIDs(t *testing.T) {
	c := newTestCluster(t, topology.Small)
	for node := 0; node < 2; node++ {
		if err := c.KillProcess("Database", node, "zookeeper"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.CreateNetwork("n1", "10.9.0.0/24"); err == nil {
		t.Fatal("CreateNetwork should fail without a Zookeeper quorum")
	}
}

// TestVRouterProcessFailureTakesDownHostDP: any vrouter-agent or
// vrouter-dpdk failure takes down that host's DP only, and the vRouter
// supervisor restores it.
func TestVRouterProcessFailureTakesDownHostDP(t *testing.T) {
	c := newTestCluster(t, topology.Small)
	for _, name := range []string{"vrouter-agent", "vrouter-dpdk"} {
		// Kill the host supervisor so the failure persists.
		if err := c.KillProcess("vRouter", 0, "supervisor-vrouter"); err != nil {
			t.Fatal(err)
		}
		if err := c.KillProcess("vRouter", 0, name); err != nil {
			t.Fatal(err)
		}
		if !c.WaitUntil(waitLong, func() bool { return c.ProbeDP(0) != nil }) {
			t.Fatalf("host 0 DP should be down after %s failure", name)
		}
		if err := c.ProbeDP(1); err != nil {
			t.Errorf("host 1 DP should be unaffected by host 0's %s failure: %v", name, err)
		}
		// Restore the supervisor; it auto-restarts the process.
		if err := c.RestartProcess("vRouter", 0, "supervisor-vrouter"); err != nil {
			t.Fatal(err)
		}
		if !c.WaitUntil(waitLong, func() bool { return c.ProbeDP(0) == nil }) {
			t.Fatalf("host 0 DP did not recover after %s restart", name)
		}
	}
}

// TestDiscoveryRequiredForRediscovery: with every discovery instance dead,
// an agent that loses both its control connections cannot rediscover and
// flushes, even though a control process is still alive.
func TestDiscoveryRequiredForRediscovery(t *testing.T) {
	c := newTestCluster(t, topology.Small)
	killControlSupervisors(t, c)
	// Kill discovery everywhere (supervisor-config first, per node).
	for node := 0; node < 3; node++ {
		if err := c.KillProcess("Config", node, "supervisor-config"); err != nil {
			t.Fatal(err)
		}
		if err := c.KillProcess("Config", node, "discovery"); err != nil {
			t.Fatal(err)
		}
	}
	// Find agent 0's two controls and kill exactly those.
	conns, err := c.AgentConnections(0)
	if err != nil || len(conns) != 2 {
		t.Fatalf("agent 0 connections: %v, %v", conns, err)
	}
	for _, node := range conns {
		if err := c.KillProcess("Control", node, "control"); err != nil {
			t.Fatal(err)
		}
	}
	if !c.WaitUntil(waitLong, func() bool { return c.ProbeDP(0) != nil }) {
		t.Fatal("agent 0 should be flushed: both controls dead and no discovery")
	}
	// Restore discovery on one node: the agent rediscovers the survivor.
	if err := c.RestartProcess("Config", 0, "discovery"); err != nil {
		t.Fatal(err)
	}
	if !c.WaitUntil(waitLong, func() bool { return c.ProbeDP(0) == nil }) {
		t.Fatal("agent 0 did not recover once discovery returned")
	}
}

// TestDNSBlockRequiredForResolution: an agent resolves only through an
// attached control node whose dns and named are both alive.
func TestDNSBlockRequiredForResolution(t *testing.T) {
	c := newTestCluster(t, topology.Small)
	killControlSupervisors(t, c)
	conns, err := c.AgentConnections(0)
	if err != nil || len(conns) != 2 {
		t.Fatalf("agent 0 connections: %v, %v", conns, err)
	}
	// Break dns on one attached node and named on the other: forwarding
	// still works (control processes are alive) but resolution fails —
	// the paper's "control-1 + dns-2 + named-3 is not sufficient".
	if err := c.KillProcess("Control", conns[0], "dns"); err != nil {
		t.Fatal(err)
	}
	if err := c.KillProcess("Control", conns[1], "named"); err != nil {
		t.Fatal(err)
	}
	prefix, _ := c.HostPrefix(1)
	if err := c.Forward(0, prefix); err != nil {
		t.Errorf("forwarding should survive dns/named failures: %v", err)
	}
	if err := c.Resolve(0, "x.test"); err == nil {
		t.Error("resolution should fail with no attached complete {control+dns+named} block")
	}
	// Heal one block member: resolution returns.
	if err := c.RestartProcess("Control", conns[0], "dns"); err != nil {
		t.Fatal(err)
	}
	if err := c.Resolve(0, "x.test"); err != nil {
		t.Errorf("resolution should work with a complete block on node %d: %v", conns[0], err)
	}
}

// TestRedisManualRestartAndCacheLoss: redis is outside supervisor control;
// a crash loses the real-time cache and requires manual restart.
func TestRedisManualRestartAndCacheLoss(t *testing.T) {
	c := newTestCluster(t, topology.Small)
	if err := c.SendUVE("vm-1", "cpu=20"); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.QueryRealtime("vm-1"); !ok {
		t.Fatal("real-time value should be cached")
	}
	if err := c.KillProcess("Analytics", 0, "redis"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * DefaultTiming().SupervisorCheck)
	if c.Alive("Analytics", 0, "redis") {
		t.Fatal("redis must not be auto-restarted (manual restart only)")
	}
	if _, ok := c.QueryRealtime("vm-1"); ok {
		t.Error("cache should be lost after the redis crash")
	}
	// Persistent analytics still serve from Cassandra.
	if v, err := c.QueryAnalytics("vm-1"); err != nil || v != "cpu=20" {
		t.Errorf("persistent query = %q, %v", v, err)
	}
	if err := c.RestartProcess("Analytics", 0, "redis"); err != nil {
		t.Fatal(err)
	}
	// New data flows into the restarted cache.
	if err := c.SendUVE("vm-2", "cpu=30"); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.QueryRealtime("vm-2"); !ok {
		t.Error("restarted redis should cache new data")
	}
}

// TestHostFailureAndRecovery: a host crash kills its node's processes; on
// boot, supervisors return, auto-restart processes recover, and
// manual-restart Database processes stay down until the operator acts.
func TestHostFailureAndRecovery(t *testing.T) {
	c := newTestCluster(t, topology.Small)
	if err := c.KillHost("H1"); err != nil {
		t.Fatal(err)
	}
	// CP survives on the 2-of-3 quorum.
	if err := c.ProbeCP(waitLong); err != nil {
		t.Fatalf("CP should survive one host loss: %v", err)
	}
	if err := c.RestoreHost("H1"); err != nil {
		t.Fatal(err)
	}
	if !c.WaitUntil(waitLong, func() bool { return c.Alive("Config", 0, "config-api") }) {
		t.Fatal("auto-restart processes did not return after host boot")
	}
	if c.Alive("Database", 0, "cassandra-db (Config)") {
		t.Fatal("manual-restart cassandra should wait for the operator after boot")
	}
	if err := c.RestartProcess("Database", 0, "cassandra-db (Config)"); err != nil {
		t.Fatal(err)
	}
	if !c.Alive("Database", 0, "cassandra-db (Config)") {
		t.Error("manual restart failed")
	}
}

// TestRackFailureSmallTopology: in the Small topology the single rack is a
// total single point of failure; both planes die and return on restore.
func TestRackFailureSmallTopology(t *testing.T) {
	c := newTestCluster(t, topology.Small)
	if err := c.KillRack("R1"); err != nil {
		t.Fatal(err)
	}
	if err := c.ProbeCP(300 * time.Millisecond); err == nil {
		t.Fatal("CP should be down with the rack dead")
	}
	if !c.WaitUntil(waitLong, func() bool { return c.ProbeDP(0) != nil }) {
		t.Fatal("DP should be down once agents flush")
	}
	if err := c.RestoreRack("R1"); err != nil {
		t.Fatal(err)
	}
	// Operator restarts the manual processes: the four Database quorum
	// components and redis (also outside supervisor control).
	for node := 0; node < 3; node++ {
		for _, name := range []string{"cassandra-db (Config)", "cassandra-db (Analytics)", "kafka", "zookeeper"} {
			if err := c.RestartProcess("Database", node, name); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := c.RestartProcess("Analytics", 0, "redis"); err != nil {
		t.Fatal(err)
	}
	if !c.WaitUntil(waitLong, func() bool { return c.ProbeCP(time.Second) == nil }) {
		t.Fatal("CP did not recover after rack restore and manual Database restarts")
	}
	if !c.WaitUntil(waitLong, func() bool { return c.ProbeDP(0) == nil }) {
		t.Fatal("DP did not recover after rack restore")
	}
}

// TestBGPResyncAfterControlRestart: a restarting control re-learns the
// configuration version from its mesh peers.
func TestBGPResyncAfterControlRestart(t *testing.T) {
	c := newTestCluster(t, topology.Small)
	killControlSupervisors(t, c)
	if err := c.KillProcess("Control", 0, "control"); err != nil {
		t.Fatal(err)
	}
	id, err := c.CreateNetwork("resync-test", "10.7.0.0/24")
	if err != nil {
		t.Fatal(err)
	}
	if !c.WaitUntil(waitLong, func() bool { return c.ConfigVersionReached(id) }) {
		t.Fatal("surviving controls did not apply the config")
	}
	if err := c.RestartProcess("Control", 0, "control"); err != nil {
		t.Fatal(err)
	}
	c.mu.Lock()
	v := c.controls[0].cfgVersion
	c.mu.Unlock()
	if v < id {
		t.Errorf("restarted control resynced to version %d, want ≥ %d", v, id)
	}
}

// TestGetNetworkRoundTrip: written configuration is readable back through
// the API.
func TestGetNetworkRoundTrip(t *testing.T) {
	c := newTestCluster(t, topology.Small)
	if _, err := c.CreateNetwork("tenant-net", "192.168.0.0/16"); err != nil {
		t.Fatal(err)
	}
	v, err := c.GetNetwork("tenant-net")
	if err != nil || v != "192.168.0.0/16" {
		t.Errorf("GetNetwork = %q, %v", v, err)
	}
	if _, err := c.GetNetwork("absent"); err == nil {
		t.Error("absent network read succeeded")
	}
}

// TestAlarmGeneration: events streamed through Kafka are visible to
// alarm-gen.
func TestAlarmGeneration(t *testing.T) {
	c := newTestCluster(t, topology.Small)
	for i := 0; i < 3; i++ {
		if err := c.SendUVE("alarm-case", "overload"); err != nil {
			t.Fatal(err)
		}
	}
	n, err := c.GenerateAlarms("alarm-case")
	if err != nil || n != 3 {
		t.Errorf("GenerateAlarms = %d, %v; want 3", n, err)
	}
}

// TestLargeTopologyBoots: the Large topology works identically at the
// process level.
func TestLargeTopologyBoots(t *testing.T) {
	c := newTestCluster(t, topology.Large)
	if err := c.ProbeCP(waitLong); err != nil {
		t.Fatalf("Large CP probe: %v", err)
	}
	// Killing rack R1 takes down only node 0: CP survives.
	if err := c.KillRack("R1"); err != nil {
		t.Fatal(err)
	}
	if err := c.ProbeCP(waitLong); err != nil {
		t.Errorf("Large CP should survive one rack: %v", err)
	}
	ok := c.WaitUntil(waitLong, func() bool {
		for h := 0; h < c.ComputeHostCount(); h++ {
			if c.ProbeDP(h) != nil {
				return false
			}
		}
		return true
	})
	if !ok {
		t.Error("Large DP should survive one rack loss")
	}
}

// TestClusterConfigValidation covers constructor error paths.
func TestClusterConfigValidation(t *testing.T) {
	prof := profile.OpenContrail3x()
	topo := topology.NewSmall(prof.ClusterRoles, 3)
	if _, err := New(Config{Topology: topo, ComputeHosts: 1}); err == nil {
		t.Error("nil profile accepted")
	}
	if _, err := New(Config{Profile: prof, ComputeHosts: 1}); err == nil {
		t.Error("nil topology accepted")
	}
	if _, err := New(Config{Profile: prof, Topology: topo, ComputeHosts: 0}); err == nil {
		t.Error("zero compute hosts accepted")
	}
	bad := Timing{SupervisorCheck: -1, AutoRestart: 1, Rediscover: 1}
	if _, err := New(Config{Profile: prof, Topology: topo, ComputeHosts: 1, Timing: bad}); err == nil {
		t.Error("bad timing accepted")
	}
}

// TestInjectionErrors covers unknown-target error paths.
func TestInjectionErrors(t *testing.T) {
	c := newTestCluster(t, topology.Small)
	if err := c.KillProcess("Nope", 0, "x"); err == nil {
		t.Error("unknown process kill accepted")
	}
	if err := c.RestartProcess("Nope", 0, "x"); err == nil {
		t.Error("unknown process restart accepted")
	}
	if err := c.KillHost("H99"); err == nil {
		t.Error("unknown host accepted")
	}
	if err := c.KillRack("R99"); err == nil {
		t.Error("unknown rack accepted")
	}
	if err := c.KillVM("V99"); err == nil {
		t.Error("unknown vm accepted")
	}
	if err := c.RestartNodeRole("Nope", 0); err == nil {
		t.Error("unknown node-role accepted")
	}
	if _, err := c.AgentConnections(99); err == nil {
		t.Error("unknown agent accepted")
	}
	if err := c.ProbeDP(99); err == nil {
		t.Error("unknown host probe accepted")
	}
	if err := c.Forward(99, "x"); err == nil {
		t.Error("unknown host forward accepted")
	}
	if err := c.Resolve(99, "x"); err == nil {
		t.Error("unknown host resolve accepted")
	}
	if _, err := c.HostPrefix(99); err == nil {
		t.Error("unknown host prefix accepted")
	}
	if err := c.KillProcess("Config", 0, "config-api"); err != nil {
		t.Fatal(err)
	}
	if err := c.KillProcess("Config", 0, "config-api"); err != nil {
		t.Error("double kill should be a no-op, not an error")
	}
}

// TestSnapshot: the introspection view is sorted and consistent.
func TestSnapshot(t *testing.T) {
	c := newTestCluster(t, topology.Small)
	snap := c.Snapshot()
	if len(snap) == 0 {
		t.Fatal("empty snapshot")
	}
	for i := 1; i < len(snap); i++ {
		if statusLess(snap[i], snap[i-1]) {
			t.Fatal("snapshot not sorted")
		}
	}
	// All processes should be alive on a healthy cluster.
	for _, st := range snap {
		if !st.Alive {
			t.Errorf("%s/%d/%s not alive on a healthy cluster", st.Role, st.Node, st.Name)
		}
	}
}

// TestVMFailureSmallTopology: in the Small topology one VM carries all of
// a node's roles; killing it must not take the control plane down.
func TestVMFailureSmallTopology(t *testing.T) {
	c := newTestCluster(t, topology.Small)
	if err := c.KillVM("GCAD1"); err != nil {
		t.Fatal(err)
	}
	if err := c.ProbeCP(waitLong); err != nil {
		t.Errorf("CP should survive one GCAD VM loss: %v", err)
	}
	if err := c.RestoreVM("GCAD1"); err != nil {
		t.Fatal(err)
	}
}

// TestDoubleStartRejected ensures Start is one-shot.
func TestDoubleStartRejected(t *testing.T) {
	c := newTestCluster(t, topology.Small)
	if err := c.Start(); err == nil {
		t.Error("second Start accepted")
	}
}

// TestFiveNodeCluster: the testbed generalizes to 2N+1 = 5 nodes: the
// quorum components tolerate two losses, agents still hold exactly two
// connections, and the DP survives the loss of any three control
// processes (two remain).
func TestFiveNodeCluster(t *testing.T) {
	prof := profile.OpenContrail3x()
	topo := topology.NewLarge(prof.ClusterRoles, 5)
	c, err := New(Config{Profile: prof, Topology: topo, ComputeHosts: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)

	if err := c.ProbeCP(waitLong); err != nil {
		t.Fatalf("5-node CP probe: %v", err)
	}
	// Two Database losses: quorum (3 of 5) still holds.
	for node := 0; node < 2; node++ {
		if err := c.KillProcess("Database", node, "zookeeper"); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.ProbeCP(waitLong); err != nil {
		t.Errorf("5-node CP should survive two zookeeper losses: %v", err)
	}
	// Third loss: quorum gone.
	if err := c.KillProcess("Database", 2, "zookeeper"); err != nil {
		t.Fatal(err)
	}
	if err := c.ProbeCP(300 * time.Millisecond); err == nil {
		t.Error("5-node CP should fail with 3 of 5 zookeepers down")
	}
	// Agents hold exactly two connections; killing three controls leaves
	// the DP alive on the remaining two.
	for node := 0; node < 5; node++ {
		if err := c.KillProcess("Control", node, "supervisor-control"); err != nil {
			t.Fatal(err)
		}
	}
	for node := 0; node < 3; node++ {
		if err := c.KillProcess("Control", node, "control"); err != nil {
			t.Fatal(err)
		}
	}
	ok := c.WaitUntil(waitLong, func() bool {
		for h := 0; h < 2; h++ {
			conns, _ := c.AgentConnections(h)
			if len(conns) != 2 {
				return false
			}
			for _, n := range conns {
				if n < 3 {
					return false
				}
			}
		}
		return true
	})
	if !ok {
		t.Fatal("agents did not converge on the two surviving controls")
	}
	for h := 0; h < 2; h++ {
		if err := c.ProbeDP(h); err != nil {
			t.Errorf("5-node DP should survive three control losses: %v", err)
		}
	}
}
