package cluster

import (
	"fmt"
	"sort"

	"sdnavail/internal/profile"
	"sdnavail/internal/telemetry"
	"sdnavail/internal/topology"
)

// Graph-link failures. When the topology declares network links the
// testbed mirrors them in a topology.Connectivity and gates every
// controller process's usability on its host having a live path to the
// edge. The model rides the same management fabric for everything: a
// host severed from the core loses its clients, its quorum peers AND
// its BGP mesh sessions (meshConnectedLocked requires both endpoints
// reachable), so cutting a rack's fabric link behaves like isolating
// every controller node in that rack — but expressed in link terms,
// with link-mode attribution in the telemetry ledger.
//
// Recompute stays incremental: Connectivity.SetLink returns exactly the
// graph nodes whose reachability flipped, and only the processes hosted
// on those nodes are marked dirty. That is sufficient because a
// process's usability depends on no other host's reachability, which is
// the same locality argument the dirty-set engine already relies on for
// hardware columns (and the graph equivalence test pins against the
// full-scan path).
//
// Link-free topologies never build the mirror: c.net stays nil, every
// reachability check short-circuits true, and the testbed is
// bit-identical to the historical containment-tree semantics.

// initNetGraphLocked builds the connectivity mirror and the host→procs
// index. Called from New after the process table is complete; only
// topologies that declare links pay for it.
func (c *Cluster) initNetGraphLocked() error {
	if len(c.cfg.Topology.Links) == 0 {
		return nil
	}
	g, err := c.cfg.Topology.Graph()
	if err != nil {
		return err
	}
	c.net = topology.NewConnectivity(g)
	c.hostProcs = map[string][]procKey{}
	for k, loc := range c.loc {
		if k.role == string(c.cfg.Profile.HostRole) {
			continue // compute hosts sit outside the controller fabric
		}
		if _, ok := g.NodeIndex(loc.host); ok {
			c.hostProcs[loc.host] = append(c.hostProcs[loc.host], k)
		}
	}
	return nil
}

// hostReachableLocked reports whether the named host has a live network
// path to the edge. Hosts outside the graph (compute hosts) and
// link-free topologies are always reachable.
func (c *Cluster) hostReachableLocked(host string) bool {
	if c.net == nil {
		return true
	}
	node, ok := c.net.Graph().NodeIndex(host)
	if !ok {
		return true
	}
	return c.net.Reachable(node)
}

// HostReachable reports whether the named topology host currently has a
// live network path to the edge.
func (c *Cluster) HostReachable(host string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hostReachableLocked(host)
}

// controlHostReachableLocked reports whether the controller node's
// Control host is reachable over the graph.
func (c *Cluster) controlHostReachableLocked(node int) bool {
	if c.net == nil {
		return true
	}
	return c.hostReachableLocked(c.loc[c.controls[node].key()].host)
}

// replicaReachableLocked reports whether the Database node's replicas
// can reach the fresh majority to reconcile: not partitioned away, and
// its host connected over the fabric. runCatchUps holds deferred
// catch-up promotions behind it.
func (c *Cluster) replicaReachableLocked(node int) bool {
	if !c.reachableLocked(node) {
		return false
	}
	if c.net == nil {
		return true
	}
	k := procKey{role: string(profile.Database), node: node, name: "cassandra-db (Config)"}
	loc, ok := c.loc[k]
	if !ok {
		return true
	}
	return c.hostReachableLocked(loc.host)
}

// lookupGraphLink resolves a link ID, with a helpful error when the
// topology declares no links at all.
func (c *Cluster) lookupGraphLinkLocked(id string) (int, error) {
	if c.net == nil {
		return 0, fmt.Errorf("cluster: topology %s declares no network links", c.cfg.Topology.Name)
	}
	li, ok := c.net.Graph().LinkIndex(id)
	if !ok {
		return 0, fmt.Errorf("cluster: no graph link %q in topology %s", id, c.cfg.Topology.Name)
	}
	return li, nil
}

// CutGraphLink fails one named topology network link (an uplink, a
// fabric link or the edge adjacency). Every process on a host that
// loses its edge path becomes unusable — quorum replicas drop out,
// controls lose their mesh — until the link is restored. Cutting an
// already-cut link is a no-op.
func (c *Cluster) CutGraphLink(id string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	li, err := c.lookupGraphLinkLocked(id)
	if err != nil {
		return err
	}
	c.setGraphLinkLocked(li, false)
	return nil
}

// RestoreGraphLink heals one severed network link; rejoining hosts
// resync their controls from the mesh and their replicas catch up.
func (c *Cluster) RestoreGraphLink(id string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	li, err := c.lookupGraphLinkLocked(id)
	if err != nil {
		return err
	}
	c.setGraphLinkLocked(li, true)
	return nil
}

// HealGraphLinks restores every severed network link (no-op on
// link-free topologies).
func (c *Cluster) HealGraphLinks() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.net == nil {
		return
	}
	g := c.net.Graph()
	for li := range g.Links {
		if c.net.LinkDown(li) {
			c.setGraphLinkLocked(li, true)
		}
	}
}

// GraphLinks returns the declared network link IDs in graph order (nil
// for link-free topologies).
func (c *Cluster) GraphLinks() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.net == nil {
		return nil
	}
	return c.net.Graph().LinkIDs()
}

// GraphLinkDown reports whether the named network link is currently cut
// (false for unknown links and link-free topologies).
func (c *Cluster) GraphLinkDown(id string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.net == nil {
		return false
	}
	li, ok := c.net.Graph().LinkIndex(id)
	if !ok {
		return false
	}
	return c.net.LinkDown(li)
}

// setGraphLinkLocked flips one link and recomputes incrementally: only
// the processes on hosts whose reachability actually changed are marked
// dirty. Callers hold c.mu.
func (c *Cluster) setGraphLinkLocked(li int, up bool) {
	if c.net.LinkDown(li) == !up {
		return // already in the requested state
	}
	g := c.net.Graph()
	kind := telemetry.EventLinkCut
	if up {
		kind = telemetry.EventLinkHealed
	}
	c.telemetryGraphLinkEventLocked(kind, g.Links[li].ID())
	changed := c.net.SetLink(li, up)
	for _, node := range changed {
		host := g.HostName(node)
		if host == "" {
			continue // rack/fabric/edge nodes carry no processes
		}
		for _, k := range c.hostProcs[host] {
			c.markDirtyLocked(k)
		}
	}
	if up {
		// Mirror RestoreLink: rejoining controls re-establish their BGP
		// sessions and pull state from the now-reachable mesh.
		c.meshRefreshLocked()
	}
	c.recomputeLocked()
}

// graphCutModeLocked names the telemetry failure mode for a host severed
// from the fabric: the first down link along its edge path on tree
// fabrics, else the lexically first down link. Callers hold c.mu and
// have established that the host is graph-unreachable.
func (c *Cluster) graphCutModeLocked(host string) string {
	g := c.net.Graph()
	if node, ok := g.NodeIndex(host); ok {
		if path, err := g.PathLinks(node); err == nil {
			for _, li := range path {
				if c.net.LinkDown(li) {
					return "link:" + g.Links[li].ID()
				}
			}
		}
	}
	var down []string
	for li := range g.Links {
		if c.net.LinkDown(li) {
			down = append(down, g.Links[li].ID())
		}
	}
	sort.Strings(down)
	if len(down) > 0 {
		return "link:" + down[0]
	}
	return "link:unknown"
}

// telemetryGraphLinkEventLocked records a graph link cut/heal with the
// link's ID as subject. Callers hold c.mu.
func (c *Cluster) telemetryGraphLinkEventLocked(kind, id string) {
	ts := c.telState
	if ts == nil {
		return
	}
	if kind == telemetry.EventLinkCut {
		ts.cLinkCuts.Inc()
	}
	now := c.clk.Now()
	ts.t.Trace.Record(telemetry.Event{
		At: now, AtHours: ts.hours(now), Kind: kind, Subject: "link:" + id,
	})
}
