package cluster

import "fmt"

// Network partitions. The testbed models the dominant real-world incident:
// a set of controller nodes becomes isolated from the rest of the cluster
// and from the compute hosts (an inter-rack uplink failure, say). Isolated
// nodes keep running — their processes are alive — but nothing outside the
// isolation can reach them: quorum backends lose their replicas, vRouter
// agents drop their sessions, and the BGP mesh stops flooding to them.
// Healing the partition restores reachability; stores catch stale replicas
// up by read repair and control processes re-sync from the mesh.

// IsolateNodes partitions the given controller nodes away from the rest of
// the cluster and from the compute hosts. Calling it again replaces the
// isolated set.
func (c *Cluster) IsolateNodes(nodes ...int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, n := range nodes {
		if n < 0 || n >= c.cfg.Topology.ClusterSize {
			return fmt.Errorf("cluster: no controller node %d", n)
		}
	}
	c.isolated = map[int]bool{}
	for _, n := range nodes {
		c.isolated[n] = true
	}
	c.recomputeLocked()
	return nil
}

// HealPartition removes any isolation.
func (c *Cluster) HealPartition() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.isolated = nil
	c.recomputeLocked()
}

// Isolated reports whether the controller node is currently partitioned
// away.
func (c *Cluster) Isolated(node int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.isolated[node]
}

// reachableLocked reports whether the controller node can be reached from
// the majority side (clients, compute hosts, the other nodes).
func (c *Cluster) reachableLocked(node int) bool {
	return !c.isolated[node]
}

// usableLocked combines process liveness with reachability: the process is
// running, its hardware is up, and its node is not partitioned away.
func (c *Cluster) usableLocked(k procKey) bool {
	if !c.aliveLocked(k) {
		return false
	}
	// Per-host vRouter processes are never in the isolated set (isolation
	// applies to controller nodes).
	if k.role == string(c.cfg.Profile.HostRole) {
		return true
	}
	return c.reachableLocked(k.node)
}
