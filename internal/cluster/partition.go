package cluster

import (
	"fmt"
	"sort"

	"sdnavail/internal/telemetry"
)

// Network partitions. The testbed models two incident classes:
//
//   - Whole-node isolation (IsolateNodes): a set of controller nodes
//     becomes unreachable from the rest of the cluster and from the
//     compute hosts (an inter-rack uplink failure, say). Isolated nodes
//     keep running — their processes are alive — but nothing outside the
//     isolation can reach them: quorum backends lose their replicas,
//     vRouter agents drop their sessions, and the BGP mesh stops flooding
//     to them.
//
//   - Asymmetric link cuts (CutLink): a single controller-pair mesh link
//     fails while both endpoints stay reachable by clients and compute
//     hosts — the gray, partial partition of a flaky cross-rack path. The
//     iBGP full mesh does not re-advertise through a third node, so the
//     pair stops exchanging routes while everything else still works; the
//     cluster degrades without going down.
//
// Healing restores reachability; stores catch stale replicas up by read
// repair and control processes re-sync from the mesh.

// IsolateNodes partitions the given controller nodes away from the rest of
// the cluster and from the compute hosts. Calling it again replaces the
// isolated set. At least one node is required: an empty call used to
// silently heal the partition, which is what HealPartition is for.
func (c *Cluster) IsolateNodes(nodes ...int) error {
	if len(nodes) == 0 {
		return fmt.Errorf("cluster: IsolateNodes needs at least one node (use HealPartition to clear isolation)")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, n := range nodes {
		if n < 0 || n >= c.cfg.Topology.ClusterSize {
			return fmt.Errorf("cluster: no controller node %d", n)
		}
	}
	c.isolated = make(map[int]bool, len(nodes))
	for _, n := range nodes {
		c.isolated[n] = true
	}
	// Reachability shifted for every controller process at once; only a
	// full rescan sees all the consequences.
	c.markAllDirtyLocked()
	c.recomputeLocked()
	return nil
}

// HealPartition removes any isolation.
func (c *Cluster) HealPartition() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.isolated = nil
	c.markAllDirtyLocked()
	c.recomputeLocked()
}

// Isolated reports whether the controller node is currently partitioned
// away.
func (c *Cluster) Isolated(node int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.isolated[node]
}

// link names a severed controller-pair mesh link, normalized a < b.
type link struct{ a, b int }

func normLink(a, b int) link {
	if a > b {
		a, b = b, a
	}
	return link{a: a, b: b}
}

// CutLink severs the control-mesh link between two controller nodes. Both
// nodes stay reachable by clients and compute hosts; only their mutual BGP
// session drops. Cutting an already-cut link is a no-op.
func (c *Cluster) CutLink(a, b int) error {
	if a == b {
		return fmt.Errorf("cluster: cannot cut a link from node %d to itself", a)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, n := range []int{a, b} {
		if n < 0 || n >= c.cfg.Topology.ClusterSize {
			return fmt.Errorf("cluster: no controller node %d", n)
		}
	}
	if c.cutLinks == nil {
		c.cutLinks = map[link]bool{}
	}
	if !c.cutLinks[normLink(a, b)] {
		c.telemetryLinkEventLocked(telemetry.EventLinkCut, a, b)
	}
	c.cutLinks[normLink(a, b)] = true
	c.markAllDirtyLocked()
	c.recomputeLocked()
	return nil
}

// RestoreLink heals one severed mesh link; the endpoints re-exchange state
// on the next mesh refresh.
func (c *Cluster) RestoreLink(a, b int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, n := range []int{a, b} {
		if n < 0 || n >= c.cfg.Topology.ClusterSize {
			return fmt.Errorf("cluster: no controller node %d", n)
		}
	}
	if c.cutLinks[normLink(a, b)] {
		c.telemetryLinkEventLocked(telemetry.EventLinkHealed, a, b)
	}
	delete(c.cutLinks, normLink(a, b))
	if len(c.cutLinks) == 0 {
		c.cutLinks = nil
	}
	c.meshRefreshLocked()
	c.markAllDirtyLocked()
	c.recomputeLocked()
	return nil
}

// HealLinks restores every severed mesh link.
func (c *Cluster) HealLinks() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.telState != nil && len(c.cutLinks) > 0 {
		links := make([]link, 0, len(c.cutLinks))
		for l := range c.cutLinks {
			links = append(links, l)
		}
		sort.Slice(links, func(i, j int) bool {
			if links[i].a != links[j].a {
				return links[i].a < links[j].a
			}
			return links[i].b < links[j].b
		})
		for _, l := range links {
			c.telemetryLinkEventLocked(telemetry.EventLinkHealed, l.a, l.b)
		}
	}
	c.cutLinks = nil
	c.meshRefreshLocked()
	c.markAllDirtyLocked()
	c.recomputeLocked()
}

// LinkCut reports whether the mesh link between the two controller nodes
// is currently severed.
func (c *Cluster) LinkCut(a, b int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.linkCutLocked(a, b)
}

func (c *Cluster) linkCutLocked(a, b int) bool {
	return c.cutLinks[normLink(a, b)]
}

// meshConnectedLocked reports whether two controller nodes can exchange
// mesh state: same side of any isolation, the pairwise link intact, and —
// with a declared network graph — both Control hosts reachable over the
// fabric (the iBGP sessions ride the same management network as the
// clients, so a host severed from the core loses its mesh peers too).
func (c *Cluster) meshConnectedLocked(a, b int) bool {
	if c.isolated[a] != c.isolated[b] || c.linkCutLocked(a, b) {
		return false
	}
	return c.controlHostReachableLocked(a) && c.controlHostReachableLocked(b)
}

// meshRefreshLocked re-syncs every alive control from its now-reachable
// peers — the BGP session re-establishment after a link heals.
func (c *Cluster) meshRefreshLocked() {
	for _, ctl := range c.controls {
		if c.aliveLocked(ctl.key()) {
			ctl.resyncLocked()
		}
	}
}

// reachableLocked reports whether the controller node can be reached from
// the majority side (clients, compute hosts, the other nodes).
func (c *Cluster) reachableLocked(node int) bool {
	return !c.isolated[node]
}

// usableLocked combines process liveness with reachability: the process is
// running, its hardware is up, its node is not partitioned away, and its
// host still has a network path to the edge when the topology declares
// graph links.
func (c *Cluster) usableLocked(k procKey) bool {
	if !c.aliveLocked(k) {
		return false
	}
	// Per-host vRouter processes are never in the isolated set (isolation
	// applies to controller nodes) and compute hosts sit outside the
	// controller fabric graph.
	if k.role == string(c.cfg.Profile.HostRole) {
		return true
	}
	return c.reachableLocked(k.node) && c.hostReachableLocked(c.loc[k].host)
}
