package cluster

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"sdnavail/internal/profile"
	"sdnavail/internal/topology"
)

func TestBusPubSub(t *testing.T) {
	b := NewBus()
	defer b.Close()
	sub, err := b.Subscribe("t", "c1", 8)
	if err != nil {
		t.Fatal(err)
	}
	b.Publish(Message{Topic: "t", From: "x", Payload: 42})
	select {
	case m := <-sub.C():
		if m.Payload.(int) != 42 {
			t.Errorf("payload = %v", m.Payload)
		}
	case <-time.After(time.Second):
		t.Fatal("message not delivered")
	}
}

func TestBusTopicIsolation(t *testing.T) {
	b := NewBus()
	defer b.Close()
	s1, _ := b.Subscribe("a", "c", 4)
	s2, _ := b.Subscribe("b", "c", 4)
	b.Publish(Message{Topic: "a", Payload: 1})
	select {
	case <-s1.C():
	case <-time.After(time.Second):
		t.Fatal("topic a not delivered")
	}
	select {
	case m := <-s2.C():
		t.Fatalf("topic b received %v", m)
	default:
	}
}

func TestBusDropsOldestOnOverflow(t *testing.T) {
	b := NewBus()
	defer b.Close()
	sub, _ := b.Subscribe("t", "slow", 2)
	for i := 0; i < 5; i++ {
		b.Publish(Message{Topic: "t", Payload: i})
	}
	// Queue of 2 should now hold the two newest messages: 3 and 4.
	got := []int{(<-sub.C()).Payload.(int), (<-sub.C()).Payload.(int)}
	if got[0] != 3 || got[1] != 4 {
		t.Errorf("kept %v, want [3 4]", got)
	}
	if _, dropped := b.Stats(); dropped != 3 {
		t.Errorf("dropped = %d, want 3", dropped)
	}
}

func TestBusCancelAndClose(t *testing.T) {
	b := NewBus()
	sub, _ := b.Subscribe("t", "c", 2)
	sub.Cancel()
	sub.Cancel() // idempotent
	b.Publish(Message{Topic: "t", Payload: 1})
	if _, ok := <-sub.C(); ok {
		t.Error("canceled subscription received a message")
	}
	b.Close()
	b.Close() // idempotent
	if _, err := b.Subscribe("t", "late", 2); err == nil {
		t.Error("subscribe after close accepted")
	}
	b.Publish(Message{Topic: "t"}) // must not panic
}

func TestBusRejectsBadDepth(t *testing.T) {
	b := NewBus()
	defer b.Close()
	if _, err := b.Subscribe("t", "c", 0); err == nil {
		t.Error("zero depth accepted")
	}
}

func TestBusConcurrentPublish(t *testing.T) {
	b := NewBus()
	defer b.Close()
	sub, _ := b.Subscribe("t", "c", 1024)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				b.Publish(Message{Topic: "t", Payload: j})
			}
		}()
	}
	wg.Wait()
	if pub, _ := b.Stats(); pub != 800 {
		t.Errorf("published = %d, want 800", pub)
	}
	n := 0
	for {
		select {
		case <-sub.C():
			n++
		default:
			if n != 800 {
				t.Errorf("received %d, want 800", n)
			}
			return
		}
	}
}

func TestQuorumStorePutGet(t *testing.T) {
	s := NewQuorumStore("test", 3)
	if err := s.Put("k", "v1"); err != nil {
		t.Fatal(err)
	}
	v, ok, err := s.Get("k")
	if err != nil || !ok || v != "v1" {
		t.Fatalf("Get = %q, %v, %v", v, ok, err)
	}
	if _, ok, _ := s.Get("absent"); ok {
		t.Error("absent key found")
	}
}

func TestQuorumStoreSurvivesMinorityLoss(t *testing.T) {
	s := NewQuorumStore("test", 3)
	if err := s.Put("k", "v1"); err != nil {
		t.Fatal(err)
	}
	s.SetAlive(0, false)
	if !s.HasQuorum() {
		t.Fatal("2 of 3 should have quorum")
	}
	if err := s.Put("k", "v2"); err != nil {
		t.Fatalf("write with 2/3 replicas: %v", err)
	}
	if v, _, _ := s.Get("k"); v != "v2" {
		t.Errorf("read %q, want v2", v)
	}
}

func TestQuorumStoreLosesQuorum(t *testing.T) {
	s := NewQuorumStore("test", 3)
	s.SetAlive(0, false)
	s.SetAlive(1, false)
	if s.HasQuorum() {
		t.Fatal("1 of 3 should not have quorum")
	}
	if err := s.Put("k", "v"); !errors.Is(err, ErrNoQuorum) {
		t.Errorf("Put error = %v, want ErrNoQuorum", err)
	}
	if _, _, err := s.Get("k"); !errors.Is(err, ErrNoQuorum) {
		t.Errorf("Get error = %v, want ErrNoQuorum", err)
	}
	if err := s.Delete("k"); !errors.Is(err, ErrNoQuorum) {
		t.Errorf("Delete error = %v, want ErrNoQuorum", err)
	}
	if _, err := s.Keys(); !errors.Is(err, ErrNoQuorum) {
		t.Errorf("Keys error = %v, want ErrNoQuorum", err)
	}
}

func TestQuorumStoreReadRepair(t *testing.T) {
	s := NewQuorumStore("test", 3)
	s.Put("k", "old")
	s.SetAlive(2, false) // replica 2 misses the update
	s.Put("k", "new")
	s.SetAlive(2, true)  // stale replica returns
	s.SetAlive(0, false) // freshest quorum now includes the stale one
	v, ok, err := s.Get("k")
	if err != nil || !ok || v != "new" {
		t.Fatalf("Get after repair = %q, %v, %v; want new", v, ok, err)
	}
	// The stale replica must now hold the repaired value even if the
	// other replica drops out.
	s.SetAlive(1, false)
	s.SetAlive(0, true)
	v, _, err = s.Get("k")
	if err != nil || v != "new" {
		t.Fatalf("repaired replica read = %q, %v; want new", v, err)
	}
}

func TestQuorumStoreDeleteAndKeys(t *testing.T) {
	s := NewQuorumStore("test", 3)
	s.Put("b", "2")
	s.Put("a", "1")
	keys, err := s.Keys()
	if err != nil || len(keys) != 2 || keys[0] != "a" || keys[1] != "b" {
		t.Fatalf("Keys = %v, %v", keys, err)
	}
	if err := s.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Get("a"); ok {
		t.Error("deleted key still present")
	}
}

func TestQuorumStoreLastWriterWinsProperty(t *testing.T) {
	// Whatever sequence of minority failures happens between writes, a
	// quorum read always returns the latest successfully written value.
	f := func(downs []uint8) bool {
		s := NewQuorumStore("p", 3)
		last := ""
		for i, d := range downs {
			replica := int(d) % 3
			s.SetAlive(replica, i%2 == 0) // toggle some replica
			val := fmt.Sprintf("v%d", i)
			if err := s.Put("k", val); err == nil {
				last = val
			}
			s.SetAlive(replica, true)
		}
		if last == "" {
			return true
		}
		v, ok, err := s.Get("k")
		return err == nil && ok && v == last
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSequencerUnique(t *testing.T) {
	q := NewSequencer(3)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		id, err := q.Next()
		if err != nil {
			t.Fatal(err)
		}
		if seen[id] {
			t.Fatalf("duplicate ID %d", id)
		}
		seen[id] = true
	}
}

func TestSequencerUniqueAcrossFailover(t *testing.T) {
	// The paper's stated purpose of Zookeeper: guarantee uniqueness of
	// system-generated IDs. IDs must stay unique across replica churn.
	q := NewSequencer(3)
	seen := map[uint64]bool{}
	take := func() {
		id, err := q.Next()
		if err != nil {
			t.Fatal(err)
		}
		if seen[id] {
			t.Fatalf("duplicate ID %d", id)
		}
		seen[id] = true
	}
	take()
	q.SetAlive(0, false)
	take()
	q.SetAlive(0, true)
	q.SetAlive(2, false)
	take() // voter 0 missed an increment but the quorum remembers
	q.SetAlive(2, true)
	take()
}

func TestSequencerQuorumLoss(t *testing.T) {
	q := NewSequencer(3)
	q.SetAlive(0, false)
	q.SetAlive(1, false)
	if q.HasQuorum() {
		t.Error("1 of 3 voters should not be a quorum")
	}
	if _, err := q.Next(); !errors.Is(err, ErrNoQuorum) {
		t.Errorf("Next error = %v, want ErrNoQuorum", err)
	}
}

func TestEventLogAppendRead(t *testing.T) {
	l := NewEventLog(3)
	for i := 0; i < 5; i++ {
		off, err := l.Append(fmt.Sprintf("e%d", i))
		if err != nil || off != i {
			t.Fatalf("Append = %d, %v", off, err)
		}
	}
	all, err := l.ReadFrom(0)
	if err != nil || len(all) != 5 || all[4] != "e4" {
		t.Fatalf("ReadFrom(0) = %v, %v", all, err)
	}
	tail, err := l.ReadFrom(3)
	if err != nil || len(tail) != 2 || tail[0] != "e3" {
		t.Fatalf("ReadFrom(3) = %v, %v", tail, err)
	}
	if l.Len() != 5 {
		t.Errorf("Len = %d", l.Len())
	}
}

func TestEventLogQuorum(t *testing.T) {
	l := NewEventLog(3)
	l.SetAlive(0, false)
	if _, err := l.Append("ok"); err != nil {
		t.Fatalf("append with 2/3: %v", err)
	}
	l.SetAlive(1, false)
	if l.HasQuorum() {
		t.Error("1/3 should not be a quorum")
	}
	if _, err := l.Append("no"); !errors.Is(err, ErrNoQuorum) {
		t.Errorf("Append error = %v, want ErrNoQuorum", err)
	}
	// Reads still work from the single live replica.
	if _, err := l.ReadFrom(0); err != nil {
		t.Errorf("read from single replica: %v", err)
	}
	l.SetAlive(2, false)
	if _, err := l.ReadFrom(0); err == nil {
		t.Error("read with no live replicas accepted")
	}
}

func TestEventLogBadOffset(t *testing.T) {
	l := NewEventLog(3)
	l.Append("a")
	if _, err := l.ReadFrom(-1); err == nil {
		t.Error("negative offset accepted")
	}
	if _, err := l.ReadFrom(2); err == nil {
		t.Error("past-end offset accepted")
	}
}

func TestQuorumStoreDeferredCatchUpExcludesRevivedReplica(t *testing.T) {
	s := NewQuorumStore("test", 3)
	s.SetDeferredCatchUp(true)
	s.Put("k", "old")
	s.SetAlive(2, false) // replica 2 misses the update
	s.Put("k", "new")
	s.SetAlive(2, true) // revived, but parked in catch-up
	if !s.CatchingUp(2) || s.CatchingCount() != 1 {
		t.Fatal("revived replica should be catching up")
	}
	// Reads still have a fresh majority (replicas 0 and 1).
	if v, ok, err := s.Get("k"); err != nil || !ok || v != "new" {
		t.Fatalf("Get = %q, %v, %v; want new", v, ok, err)
	}
	// Losing a fresh replica drops the read quorum even though two
	// replicas are alive — the catching-up one must not be counted.
	s.SetAlive(0, false)
	if _, _, err := s.Get("k"); !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("Get with 1 fresh replica = %v, want ErrNoQuorum", err)
	}
	if _, err := s.Keys(); !errors.Is(err, ErrNoQuorum) {
		t.Fatal("Keys should also need a fresh majority")
	}
	// Writes only need an alive majority, and they land on the
	// catching-up replica too, so the window cannot grow.
	if err := s.Put("k2", "x"); err != nil {
		t.Fatalf("write during catch-up: %v", err)
	}
	// Completing the catch-up restores the read quorum.
	s.CatchUp(2)
	if s.CatchingUp(2) {
		t.Fatal("catch-up did not complete")
	}
	if v, ok, err := s.Get("k"); err != nil || !ok || v != "new" {
		t.Fatalf("Get after catch-up = %q, %v, %v; want new", v, ok, err)
	}
	if v, ok, err := s.Get("k2"); err != nil || !ok || v != "x" {
		t.Fatalf("Get of write-during-catch-up = %q, %v, %v; want x", v, ok, err)
	}
}

func TestRevivedReplicaServesStaleUntilCatchUp(t *testing.T) {
	s := NewQuorumStore("test", 3)
	s.SetDeferredCatchUp(true)
	s.Put("k", "old")
	s.Put("gone", "x")
	s.SetAlive(2, false)
	s.Put("k", "new")
	s.Delete("gone")
	s.SetAlive(2, true)
	// Before the anti-entropy pass the replica's local state is exactly
	// what it held when it died: the old version, and the deleted key.
	s.mu.Lock()
	v := s.replicas[2]["k"].value
	_, hasGone := s.replicas[2]["gone"]
	s.mu.Unlock()
	if v != "old" || !hasGone {
		t.Fatalf("replica 2 before catch-up: k=%q gone=%v; want stale old state", v, hasGone)
	}
	s.CatchUp(2)
	// The hinted, incremental resync copies the freshest version and
	// purges the key deleted during the outage.
	s.mu.Lock()
	v = s.replicas[2]["k"].value
	_, hasGone = s.replicas[2]["gone"]
	s.mu.Unlock()
	if v != "new" || hasGone {
		t.Fatalf("replica 2 after catch-up: k=%q gone=%v; want new, purged", v, hasGone)
	}
	// The caught-up replica is fully trusted: with both others down it
	// cannot form a quorum, but with one fresh peer it serves "new".
	s.SetAlive(0, false)
	if v, ok, err := s.Get("k"); err != nil || !ok || v != "new" {
		t.Fatalf("Get via caught-up replica = %q, %v, %v; want new", v, ok, err)
	}
}

// TestClusterReplicaCatchUpWindow drives the deferred catch-up end to end
// through the cluster: a Cassandra (Config) replica dies, config writes
// continue, the process restarts, and for ReplicaCatchUp the replica is
// excluded from reads and visible in Health().CatchingUpReplicas; the
// maintenance loop then completes the resync on its own.
func TestClusterReplicaCatchUpWindow(t *testing.T) {
	prof := profile.OpenContrail3x()
	topo, err := topology.ByKind(topology.Small, prof.ClusterRoles, 3)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(Config{
		Profile: prof, Topology: topo, ComputeHosts: 3,
		Degradation: Degradation{ReplicaCatchUp: 150 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)

	if err := c.KillProcess("Database", 2, "cassandra-db (Config)"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateNetwork("degraded-net", "10.42.0.0/16"); err != nil {
		t.Fatalf("create during replica outage: %v", err)
	}
	// Cassandra is manual-restart: revive it and observe the window.
	if err := c.RestartProcess("Database", 2, "cassandra-db (Config)"); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range c.Health().CatchingUpReplicas {
		if r == "cassandra-config/2" {
			found = true
		}
	}
	if !found {
		t.Fatalf("Health().CatchingUpReplicas = %v, want cassandra-config/2", c.Health().CatchingUpReplicas)
	}
	if lvl := c.Health().Level; lvl < Degraded {
		t.Errorf("health level during catch-up = %v, want at least degraded", lvl)
	}
	// Reads still work off the two fresh replicas throughout the window.
	if v, err := c.GetNetwork("degraded-net"); err != nil || v != "10.42.0.0/16" {
		t.Errorf("GetNetwork during catch-up = %q, %v", v, err)
	}
	// The maintenance loop completes the catch-up after the latency.
	if !c.WaitUntil(waitLong, func() bool { return len(c.Health().CatchingUpReplicas) == 0 }) {
		t.Fatal("replica never finished catching up")
	}
	// Post-resync the revived replica holds the update written while it
	// was down even if both other replicas die.
	for _, node := range []int{0, 1} {
		if err := c.KillProcess("Database", node, "cassandra-db (Config)"); err != nil {
			t.Fatal(err)
		}
	}
	c.mu.Lock()
	v, ok := c.configStore.replicas[2]["net/degraded-net"]
	c.mu.Unlock()
	if !ok || v.value != "10.42.0.0/16" {
		t.Errorf("caught-up replica holds %+v, want the outage-era write", v)
	}
}

// TestRevivedReplicaHeldDuringPartition is the regression test for the
// partition/catch-up interaction: a replica revived while its node sits
// behind an active partition cannot reach the fresh majority to resync,
// so it must stay out of read quorums until the partition heals AND a
// full catch-up window elapses afterwards.
func TestRevivedReplicaHeldDuringPartition(t *testing.T) {
	prof := profile.OpenContrail3x()
	topo, err := topology.ByKind(topology.Small, prof.ClusterRoles, 3)
	if err != nil {
		t.Fatal(err)
	}
	const window = 100 * time.Millisecond
	c, err := New(Config{
		Profile: prof, Topology: topo, ComputeHosts: 3,
		Degradation: Degradation{ReplicaCatchUp: window},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)

	if err := c.KillProcess("Database", 2, "cassandra-db (Config)"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateNetwork("partition-net", "10.43.0.0/16"); err != nil {
		t.Fatalf("create during replica outage: %v", err)
	}
	// Cut node 2 off, then revive its replica behind the partition.
	if err := c.IsolateNodes(2); err != nil {
		t.Fatal(err)
	}
	if err := c.RestartProcess("Database", 2, "cassandra-db (Config)"); err != nil {
		t.Fatal(err)
	}
	catching := func() bool {
		for _, r := range c.Health().CatchingUpReplicas {
			if r == "cassandra-config/2" {
				return true
			}
		}
		return false
	}
	trusted := func() bool {
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.configStore.Alive(2) && !c.configStore.CatchingUp(2)
	}
	// Behind the partition the revived process cannot reach the fresh
	// majority: the replica stays out of read quorums (marked down, not
	// merely catching) no matter how much time passes.
	if trusted() {
		t.Fatal("revived replica trusted while partitioned")
	}
	time.Sleep(4 * window)
	if trusted() {
		t.Fatal("replica promoted into read quorums while partitioned")
	}
	// Healing alone is not enough — the catch-up window starts at the
	// heal, so the replica resurfaces as catching-up, still untrusted.
	c.HealPartition()
	if !catching() {
		t.Fatal("healed replica not catching up")
	}
	if trusted() {
		t.Fatal("replica promoted immediately at heal, before the catch-up window")
	}
	if !c.WaitUntil(waitLong, func() bool { return !catching() }) {
		t.Fatal("replica never finished catching up after the heal")
	}
	// The promotion is trustworthy: the replica resynced the write it
	// missed while dead.
	c.mu.Lock()
	v, ok := c.configStore.replicas[2]["net/partition-net"]
	c.mu.Unlock()
	if !ok || v.value != "10.43.0.0/16" {
		t.Errorf("caught-up replica holds %+v, want the outage-era write", v)
	}
}
