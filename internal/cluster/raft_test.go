package cluster

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"sdnavail/internal/vclock"
)

// newRaftStore builds a 3-replica store in timed mode on a fake clock.
func newRaftStore(t *testing.T, tuning RaftTuning) (*QuorumStore, *vclock.Fake) {
	t.Helper()
	fc := vclock.NewFake(time.Time{})
	s := NewQuorumStore("cassandra-config", 3)
	s.InitRaft(fc, tuning)
	return s, fc
}

// timedTuning is the standard test tuning: elections in [40ms, 80ms],
// gray detection after 100ms.
func timedTuning() RaftTuning {
	return RaftTuning{
		ElectionMin: 40 * time.Millisecond,
		ElectionMax: 80 * time.Millisecond,
		GrayDetect:  100 * time.Millisecond,
		Seed:        7,
	}
}

// tickUntilLeader advances the clock in heartbeat steps, ticking the
// store, until a leader emerges or the budget runs out.
func tickUntilLeader(t *testing.T, s *QuorumStore, fc *vclock.Fake, step time.Duration, budget int) int {
	t.Helper()
	for i := 0; i < budget; i++ {
		fc.Advance(step)
		s.Tick(fc.Now())
		if l, _ := s.Leader(); l >= 0 {
			return l
		}
	}
	l, term := s.Leader()
	t.Fatalf("no leader after %d ticks (leader=%d term=%d)", budget, l, term)
	return -1
}

func TestInstantModeReelectsSynchronously(t *testing.T) {
	s := NewQuorumStore("cassandra-config", 3)
	if l, term := s.Leader(); l != 0 || term != 1 {
		t.Fatalf("boot leader = %d term %d, want 0 term 1", l, term)
	}
	s.SetAlive(0, false)
	l, term := s.Leader()
	if l != 1 {
		t.Fatalf("leader after crash = %d, want 1", l)
	}
	if term != 2 {
		t.Fatalf("term after crash = %d, want 2", term)
	}
	if err := s.Put("k", "v"); err != nil {
		t.Fatalf("write with 2/3 alive: %v", err)
	}
	// A recovered lower-indexed replica does not preempt the leader.
	s.SetAlive(0, true)
	if l, _ := s.Leader(); l != 1 {
		t.Fatalf("leader after revival = %d, want 1", l)
	}
	// Losing the majority loses the leader; regaining it elects again.
	s.SetAlive(0, false)
	s.SetAlive(2, false)
	if l, _ := s.Leader(); l != -1 {
		t.Fatalf("leader with minority alive = %d, want -1", l)
	}
	s.SetAlive(2, true)
	if l, _ := s.Leader(); l != 1 {
		t.Fatalf("leader after majority back = %d, want 1", l)
	}
}

func TestTimedElectionAfterLeaderCrash(t *testing.T) {
	s, fc := newRaftStore(t, timedTuning())
	step := 10 * time.Millisecond
	// Heartbeats keep followers from standing while the leader lives.
	for i := 0; i < 20; i++ {
		fc.Advance(step)
		s.Tick(fc.Now())
	}
	if l, term := s.Leader(); l != 0 || term != 1 {
		t.Fatalf("leader churned without faults: leader=%d term=%d", l, term)
	}
	s.SetAlive(0, false)
	if l, _ := s.Leader(); l != -1 {
		t.Fatal("timed mode elected synchronously")
	}
	if err := s.Put("k", "v"); !errors.Is(err, ErrNoLeader) {
		t.Fatalf("write while leaderless: %v, want ErrNoLeader", err)
	}
	if !errors.Is(ErrNoLeader, ErrNoQuorum) && !errors.Is(errFor(s), ErrNoQuorum) {
		t.Fatal("ErrNoLeader must wrap ErrNoQuorum for probe classification")
	}
	start := fc.Now()
	l := tickUntilLeader(t, s, fc, step, 50)
	if l == 0 {
		t.Fatal("dead replica elected")
	}
	elapsed := fc.Now().Sub(start)
	// Both survivors' timeouts can land in one tick bucket and split the
	// vote, so the bound is per election round, not absolute.
	events := s.TakeEvents()
	rounds := 1
	var kinds []string
	for _, ev := range events {
		kinds = append(kinds, ev.Kind)
		if ev.Kind == RaftSplitVote {
			rounds++
		}
	}
	tun := timedTuning()
	if min, max := tun.ElectionMin, time.Duration(rounds)*(tun.ElectionMax+2*step); elapsed < min || elapsed > max {
		t.Fatalf("election took %v over %d rounds, want within [%v, %v]", elapsed, rounds, min, max)
	}
	if err := s.Put("k", "v"); err != nil {
		t.Fatalf("write after election: %v", err)
	}
	if kinds[0] != RaftLeaderLost || kinds[len(kinds)-1] != RaftElected {
		t.Fatalf("events = %v", kinds)
	}
}

// errFor returns the store's current write error for wrap checks.
func errFor(s *QuorumStore) error { return s.Put("probe", "v") }

func TestForcedSplitVoteResolves(t *testing.T) {
	s, fc := newRaftStore(t, timedTuning())
	s.SetAlive(0, false)
	// Pin both surviving replicas' deadlines to the same instant: both
	// stand, each votes for itself, neither reaches 2 of 3.
	fc.Advance(40 * time.Millisecond)
	s.setElectionDeadlinesForTest(fc.Now())
	s.Tick(fc.Now())
	if l, _ := s.Leader(); l != -1 {
		t.Fatal("split vote elected a leader")
	}
	split := false
	for _, ev := range s.TakeEvents() {
		if ev.Kind == RaftSplitVote {
			split = true
		}
	}
	if !split {
		t.Fatal("no split-vote event recorded")
	}
	// Randomized redraw must break the tie.
	l := tickUntilLeader(t, s, fc, 10*time.Millisecond, 50)
	if l != 1 && l != 2 {
		t.Fatalf("elected %d", l)
	}
}

// TestElectionSequencesDeterministic runs table-driven fault scenarios
// twice each and requires identical event streams, leaders and terms —
// the FakeClock determinism the CI shuffle/count job enforces.
func TestElectionSequencesDeterministic(t *testing.T) {
	type outcome struct {
		Leader int
		Term   uint64
		Events []RaftEvent
	}
	scenarios := []struct {
		name string
		run  func(s *QuorumStore, fc *vclock.Fake)
	}{
		{"leader crash", func(s *QuorumStore, fc *vclock.Fake) {
			s.SetAlive(0, false)
			for i := 0; i < 30; i++ {
				fc.Advance(10 * time.Millisecond)
				s.Tick(fc.Now())
			}
		}},
		{"split vote", func(s *QuorumStore, fc *vclock.Fake) {
			s.SetAlive(0, false)
			fc.Advance(40 * time.Millisecond)
			s.setElectionDeadlinesForTest(fc.Now())
			for i := 0; i < 30; i++ {
				s.Tick(fc.Now())
				fc.Advance(10 * time.Millisecond)
			}
		}},
		{"leader flap", func(s *QuorumStore, fc *vclock.Fake) {
			for round := 0; round < 3; round++ {
				l, _ := s.Leader()
				if l < 0 {
					l = 0
				}
				s.SetAlive(l, false)
				for i := 0; i < 20; i++ {
					fc.Advance(10 * time.Millisecond)
					s.Tick(fc.Now())
				}
				s.SetAlive(l, true)
				s.CatchUp(l)
				for i := 0; i < 5; i++ {
					fc.Advance(10 * time.Millisecond)
					s.Tick(fc.Now())
				}
			}
		}},
		{"gray leader deposed", func(s *QuorumStore, fc *vclock.Fake) {
			if _, err := s.InjectGrayLeader(); err != nil {
				panic(err)
			}
			for i := 0; i < 40; i++ {
				fc.Advance(10 * time.Millisecond)
				s.Tick(fc.Now())
			}
			s.ClearByzantine()
		}},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			runs := make([]outcome, 2)
			for r := range runs {
				s, fc := newRaftStore(t, timedTuning())
				sc.run(s, fc)
				l, term := s.Leader()
				runs[r] = outcome{Leader: l, Term: term, Events: s.TakeEvents()}
				if l < 0 {
					t.Fatalf("run %d ended leaderless at term %d", r, term)
				}
			}
			if !reflect.DeepEqual(runs[0], runs[1]) {
				t.Fatalf("non-deterministic elections:\n%+v\n%+v", runs[0], runs[1])
			}
			if len(runs[0].Events) == 0 {
				t.Fatal("scenario produced no raft events")
			}
		})
	}
}

func TestGrayLeaderDetection(t *testing.T) {
	s, fc := newRaftStore(t, timedTuning())
	gray, err := s.InjectGrayLeader()
	if err != nil {
		t.Fatal(err)
	}
	if gray != 0 {
		t.Fatalf("grayed %d, want boot leader 0", gray)
	}
	// Before the detection budget the liar keeps its lease and corrupts
	// reads.
	if err := s.Put("net", "10.0.0.0/24"); err != nil {
		t.Fatal(err)
	}
	if v, _, err := s.Get("net"); err != nil || v == "10.0.0.0/24" {
		t.Fatalf("gray leader read = %q, %v; want corrupted value", v, err)
	}
	fc.Advance(50 * time.Millisecond)
	s.Tick(fc.Now())
	if l, _ := s.Leader(); l != 0 {
		t.Fatal("leader deposed before the detection budget")
	}
	// Past the budget the detector deposes it and an election follows.
	fc.Advance(60 * time.Millisecond)
	s.Tick(fc.Now())
	if l, _ := s.Leader(); l != -1 {
		t.Fatal("gray leader kept its lease past GrayDetect")
	}
	l := tickUntilLeader(t, s, fc, 10*time.Millisecond, 50)
	if l == 0 {
		t.Fatal("suspect replica re-elected before ClearByzantine")
	}
	var detected *RaftEvent
	for _, ev := range s.TakeEvents() {
		if ev.Kind == RaftGrayDetected {
			e := ev
			detected = &e
		}
	}
	if detected == nil {
		t.Fatal("no gray-detected event")
	}
	if detected.Duration < timedTuning().GrayDetect {
		t.Fatalf("detection latency %v below the budget", detected.Duration)
	}
	// Reads are honest again under the new leader.
	if v, _, err := s.Get("net"); err != nil || v != "10.0.0.0/24" {
		t.Fatalf("read under new leader = %q, %v", v, err)
	}
	// After clearing, the deposed replica is electable again: crash the
	// whole quorum's way there by killing the other two.
	s.ClearByzantine()
	s.SetAlive(1, false)
	if l, _ := s.Leader(); l == 1 {
		t.Fatal("dead replica still leader")
	}
	l = tickUntilLeader(t, s, fc, 10*time.Millisecond, 50)
	if l != 0 && l != 2 {
		t.Fatalf("elected %d with replica 1 dead", l)
	}
}

func TestAckDropKeepsDataLoss(t *testing.T) {
	s := NewQuorumStore("cassandra-config", 3)
	if err := s.SetAckDrop(1, true); err != nil {
		t.Fatal(err)
	}
	if err := s.SetAckDrop(2, true); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("net", "10.0.0.0/24"); err != nil {
		t.Fatalf("ack-drop write refused: %v", err)
	}
	// The droppers report fully applied while their kv is empty.
	if got := s.AppliedIndex(1); got != s.CommitIndex() {
		t.Fatalf("dropper applied %d of %d", got, s.CommitIndex())
	}
	s.mu.Lock()
	_, ok1 := s.replicas[1]["net"]
	_, ok2 := s.replicas[2]["net"]
	s.mu.Unlock()
	if ok1 || ok2 {
		t.Fatal("ack-drop replicas persisted the write")
	}
	// With the honest replica gone the value is silently lost even though
	// a quorum still answers.
	s.SetAlive(0, false)
	if _, found, err := s.Get("net"); err != nil || found {
		t.Fatalf("lost write still visible: found=%v err=%v", found, err)
	}
}
