package cluster

import (
	"testing"
	"time"

	"sdnavail/internal/profile"
	"sdnavail/internal/topology"
	"sdnavail/internal/vclock"
)

// newFakeClusterT boots a Small-topology testbed on a fake clock. The
// returned clock has the calling test registered as a driver goroutine, so
// virtual time advances only while the test is blocked in clock-aware
// waits.
func newFakeClusterT(t *testing.T) (*Cluster, *vclock.Fake) {
	t.Helper()
	fc := vclock.NewFake(time.Time{})
	prof := profile.OpenContrail3x()
	topo := topology.NewSmall(prof.ClusterRoles, 3)
	c, err := New(Config{Profile: prof, Topology: topo, ComputeHosts: 2, Clock: fc})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	fc.Register()
	t.Cleanup(fc.Unregister)
	return c, fc
}

// TestFakeClockSupervisedRestart pins the supervisor's repair latency in
// virtual time: a killed auto-restart process is noticed within one
// SupervisorCheck period and running again AutoRestart later — bounds that
// wall-clock tests can only approximate with generous sleeps.
func TestFakeClockSupervisedRestart(t *testing.T) {
	c, fc := newFakeClusterT(t)
	timing := DefaultTiming()
	killed := fc.Now()
	if err := c.KillProcess("Control", 0, "control"); err != nil {
		t.Fatal(err)
	}
	alive := func() bool {
		for _, st := range c.Snapshot() {
			if st.Role == "Control" && st.Node == 0 && st.Name == "control" {
				return st.Alive
			}
		}
		return false
	}
	if !c.WaitUntil(10*(timing.SupervisorCheck+timing.AutoRestart), alive) {
		t.Fatal("supervisor never restarted the killed control process")
	}
	elapsed := fc.Since(killed)
	if elapsed < timing.AutoRestart || elapsed > timing.SupervisorCheck+timing.AutoRestart {
		t.Errorf("restart took %v virtual time, want in [%v, %v]",
			elapsed, timing.AutoRestart, timing.SupervisorCheck+timing.AutoRestart)
	}
}

// TestFakeClockWaitUntilTimeout verifies WaitUntil consumes exactly its
// timeout in virtual time when the condition never holds.
func TestFakeClockWaitUntilTimeout(t *testing.T) {
	c, fc := newFakeClusterT(t)
	start := fc.Now()
	if c.WaitUntil(10*time.Millisecond, func() bool { return false }) {
		t.Fatal("impossible condition reported true")
	}
	if got := fc.Since(start); got != 10*time.Millisecond {
		t.Errorf("WaitUntil consumed %v virtual time, want exactly 10ms", got)
	}
}
