package cluster

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"sdnavail/internal/topology"
)

// TestSelfStabilization is the testbed's strongest property test: after an
// arbitrary randomized sequence of process kills, hardware failures and
// partitions, restoring all hardware, healing the partition and running
// the operator sweep (manual restarts) must always return BOTH planes to
// full health — no fault sequence may wedge the cluster.
func TestSelfStabilization(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			c := newTestCluster(t, topology.Small)
			rng := rand.New(rand.NewSource(seed))
			snap := c.Snapshot()

			hw := []string{"H1", "H2", "H3", "GCAD1", "GCAD2", "GCAD3", "R1", "compute0"}
			kill := func(name string) {
				switch name[0] {
				case 'H', 'c':
					_ = c.KillHost(name)
				case 'G':
					_ = c.KillVM(name)
				case 'R':
					_ = c.KillRack(name)
				}
			}
			restore := func(name string) {
				switch name[0] {
				case 'H', 'c':
					_ = c.RestoreHost(name)
				case 'G':
					_ = c.RestoreVM(name)
				case 'R':
					_ = c.RestoreRack(name)
				}
			}

			// Chaos phase: 40 random destructive actions.
			for i := 0; i < 40; i++ {
				switch rng.Intn(4) {
				case 0: // kill a random process
					st := snap[rng.Intn(len(snap))]
					_ = c.KillProcess(st.Role, st.Node, st.Name)
				case 1: // hardware flap
					name := hw[rng.Intn(len(hw))]
					if rng.Intn(2) == 0 {
						kill(name)
					} else {
						restore(name)
					}
				case 2: // partition churn
					if rng.Intn(2) == 0 {
						_ = c.IsolateNodes(rng.Intn(3))
					} else {
						c.HealPartition()
					}
				case 3: // a few probes mid-chaos must never panic
					_ = c.ProbeCP(time.Millisecond)
					_ = c.ProbeDP(rng.Intn(c.ComputeHostCount()))
				}
			}

			// Recovery phase: restore hardware, heal the partition, and
			// manually restart everything still failed (the operator's
			// sweep); supervisors return first so auto-restarts engage.
			for _, name := range hw {
				restore(name)
			}
			c.HealPartition()
			for _, st := range c.Snapshot() {
				if !st.Alive {
					_ = c.RestartProcess(st.Role, st.Node, st.Name)
				}
			}

			if !c.WaitUntil(waitLong, func() bool { return c.ProbeCP(time.Second) == nil }) {
				t.Fatalf("seed %d: control plane did not stabilize: %v", seed, c.ProbeCP(time.Second))
			}
			ok := c.WaitUntil(waitLong, func() bool {
				for h := 0; h < c.ComputeHostCount(); h++ {
					if c.ProbeDP(h) != nil {
						return false
					}
				}
				return true
			})
			if !ok {
				t.Fatalf("seed %d: data planes did not stabilize: %v", seed, c.ProbeDP(0))
			}
		})
	}
}
