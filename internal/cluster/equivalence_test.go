package cluster

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"sdnavail/internal/profile"
	"sdnavail/internal/telemetry"
	"sdnavail/internal/topology"
	"sdnavail/internal/vclock"
)

// The incremental recompute must be observationally indistinguishable from
// the full scan it replaced. This test drives two identical fake-clocked
// clusters — one pinned to the full-scan path via the forceFull knob, one
// on the dirty-set path — through the same randomized chaos sequence and
// demands identical snapshots, health reports, telemetry metrics, trace
// event streams, and ledger attribution after EVERY op. Neither cluster is
// Started, so there are no background supervisor or control loops: each op
// and its recompute run synchronously and the comparison is exact, not
// racy. Run it under -race to also cover the locking in the new paths.

// equivCluster builds one member of the comparison pair.
func equivCluster(t *testing.T, forceFull bool) (*Cluster, *telemetry.Telemetry, *vclock.Fake) {
	t.Helper()
	prof := profile.OpenContrail3x()
	topo := topology.NewSmall(prof.ClusterRoles, 3)
	tel := telemetry.New()
	fc := vclock.NewFake(time.Time{})
	c, err := New(Config{
		Profile: prof, Topology: topo, ComputeHosts: 2,
		Clock: fc, Telemetry: tel,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.mu.Lock()
	c.forceFull = forceFull
	c.mu.Unlock()
	return c, tel, fc
}

// equivOp is one chaos operation applied to both clusters in lockstep.
type equivOp struct {
	name string
	do   func(c *Cluster) error
}

// equivOps builds the operation pool from one cluster's layout (both
// clusters share it). Target choices draw from rng, so re-running the
// generator against the second cluster with an equally-seeded rng yields
// the same sequence.
func equivOps(c *Cluster, rng *rand.Rand) []equivOp {
	procs := c.Snapshot()
	var vms, hosts, racks []string
	for _, rack := range c.cfg.Topology.Racks {
		racks = append(racks, rack.Name)
		for _, host := range rack.Hosts {
			hosts = append(hosts, host.Name)
			for _, vm := range host.VMs {
				vms = append(vms, vm.Name)
			}
		}
	}
	for h := 0; h < c.ComputeHostCount(); h++ {
		hosts = append(hosts, fmt.Sprintf("compute%d", h))
	}
	n := c.cfg.Topology.ClusterSize
	pick := func(ss []string) string { return ss[rng.Intn(len(ss))] }
	proc := func() ProcStatus { return procs[rng.Intn(len(procs))] }
	return []equivOp{
		{"kill-proc", func(c *Cluster) error {
			p := proc()
			return c.KillProcess(p.Role, p.Node, p.Name)
		}},
		{"restart-proc", func(c *Cluster) error {
			p := proc()
			return c.RestartProcess(p.Role, p.Node, p.Name)
		}},
		{"restart-node-role", func(c *Cluster) error {
			p := proc()
			return c.RestartNodeRole(p.Role, p.Node)
		}},
		{"kill-vm", func(c *Cluster) error { return c.KillVM(pick(vms)) }},
		{"restore-vm", func(c *Cluster) error { return c.RestoreVM(pick(vms)) }},
		{"kill-host", func(c *Cluster) error { return c.KillHost(pick(hosts)) }},
		{"restore-host", func(c *Cluster) error { return c.RestoreHost(pick(hosts)) }},
		{"kill-rack", func(c *Cluster) error { return c.KillRack(pick(racks)) }},
		{"restore-rack", func(c *Cluster) error { return c.RestoreRack(pick(racks)) }},
		{"isolate", func(c *Cluster) error { return c.IsolateNodes(rng.Intn(n)) }},
		{"heal-partition", func(c *Cluster) error { c.HealPartition(); return nil }},
		{"cut-link", func(c *Cluster) error {
			a := rng.Intn(n)
			b := (a + 1 + rng.Intn(n-1)) % n
			return c.CutLink(a, b)
		}},
		{"restore-link", func(c *Cluster) error {
			a := rng.Intn(n)
			b := (a + 1 + rng.Intn(n-1)) % n
			return c.RestoreLink(a, b)
		}},
		{"heal-links", func(c *Cluster) error { c.HealLinks(); return nil }},
	}
}

// TestIncrementalRecomputeEquivalence is the dirty-set invariant check:
// incremental recompute == full recompute, observed through every public
// surface, after every operation of a randomized chaos sequence.
func TestIncrementalRecomputeEquivalence(t *testing.T) {
	const ops = 400
	full, fullTel, fullClk := equivCluster(t, true)
	incr, incrTel, incrClk := equivCluster(t, false)

	// Two identically-seeded generators: one drives target selection for
	// the full cluster's op closures, the other for the incremental's, so
	// both apply the same op to the same target at every step. A third
	// picks which op runs.
	fullOps := equivOps(full, rand.New(rand.NewSource(11)))
	incrOps := equivOps(incr, rand.New(rand.NewSource(11)))
	choose := rand.New(rand.NewSource(42))

	seen := map[string]int{}
	for i := 0; i < ops; i++ {
		oi := choose.Intn(len(fullOps))
		seen[fullOps[oi].name]++
		errFull := fullOps[oi].do(full)
		errIncr := incrOps[oi].do(incr)
		if fmt.Sprint(errFull) != fmt.Sprint(errIncr) {
			t.Fatalf("op %d (%s): full err %v, incremental err %v", i, fullOps[oi].name, errFull, errIncr)
		}
		// Advance both virtual clocks identically so ledger intervals and
		// trace timestamps accumulate real (virtual) duration.
		fullClk.Advance(10 * time.Minute)
		incrClk.Advance(10 * time.Minute)

		ctx := fmt.Sprintf("op %d (%s)", i, fullOps[oi].name)
		if !reflect.DeepEqual(incr.Snapshot(), full.Snapshot()) {
			t.Fatalf("%s: snapshots diverge", ctx)
		}
		hFull, hIncr := full.Health(), incr.Health()
		if !reflect.DeepEqual(hIncr, hFull) {
			t.Fatalf("%s: health reports diverge:\nfull: %v\nincr: %v", ctx, hFull, hIncr)
		}
		if !reflect.DeepEqual(incrTel.Metrics.Snapshot(), fullTel.Metrics.Snapshot()) {
			t.Fatalf("%s: metric registries diverge", ctx)
		}
		evFull, evIncr := fullTel.Trace.Events(), incrTel.Trace.Events()
		if !reflect.DeepEqual(evIncr, evFull) {
			for j := range evFull {
				if j >= len(evIncr) || !reflect.DeepEqual(evIncr[j], evFull[j]) {
					t.Fatalf("%s: trace diverges at event %d of %d/%d:\nfull: %+v\nincr: %+v",
						ctx, j, len(evFull), len(evIncr), at(evFull, j), at(evIncr, j))
				}
			}
			t.Fatalf("%s: incremental trace has %d extra events", ctx, len(evIncr)-len(evFull))
		}
		hours := full.TelemetryHours()
		if !reflect.DeepEqual(incrTel.Ledger.Attributions(hours), fullTel.Ledger.Attributions(hours)) {
			t.Fatalf("%s: ledger attributions diverge", ctx)
		}
	}
	for _, op := range fullOps {
		if seen[op.name] == 0 {
			t.Errorf("op %s never exercised in %d draws; enlarge the sequence", op.name, ops)
		}
	}
}

// at indexes a trace slice tolerantly for divergence reporting.
func at(ev []telemetry.Event, i int) any {
	if i < len(ev) {
		return ev[i]
	}
	return "<missing>"
}
