package cluster

import (
	"fmt"
	"time"

	"sdnavail/internal/vclock"
)

// ProcState is the lifecycle state of a testbed process.
type ProcState int

const (
	// Running: the process is operating (subject to its hardware being up).
	Running ProcState = iota
	// Failed: the process has crashed or been killed and awaits restart
	// (automatic by its supervisor, or manual).
	Failed
	// Fatal: the process crash-looped until its supervisor exhausted the
	// restart budget (or flapping detection tripped) and gave up — the
	// supervisord FATAL state. The process is no longer auto-restarted; it
	// returns only via a manual restart, a node-role restart, or a host
	// reboot (which boots a fresh supervisor).
	Fatal
)

// String names the state.
func (s ProcState) String() string {
	switch s {
	case Running:
		return "running"
	case Failed:
		return "failed"
	case Fatal:
		return "fatal"
	default:
		return fmt.Sprintf("ProcState(%d)", int(s))
	}
}

// Proc is one controller or vRouter process instance in the testbed.
// State transitions go through the owning Cluster, which holds the lock
// and propagates liveness to the storage backends.
type Proc struct {
	Name   string // process name from the profile, e.g. "control"
	Role   string // role name, e.g. "Control"; "vRouter" for host procs
	Node   int    // node index for cluster roles; compute host index for vRouter
	Manual bool   // manual restart only (outside supervisor control)
	IsSup  bool   // this is the node-role supervisor

	state    ProcState
	failedAt time.Time
	restarts int // completed restarts, for diagnostics
	unsuper  int // failures that occurred while the supervisor was down

	// Supervision bookkeeping (auto-restart children only).
	backoffs       int         // consecutive quick failures since the last stable run
	backoffUntil   time.Time   // the supervisor may not restart before this
	lastSupRestart time.Time   // when the supervisor last restarted this child
	failTimes      []time.Time // recent crash times, for flapping detection
}

// resetSupervision clears the crash-loop bookkeeping — called on any manual
// intervention (manual restart, node-role restart) and on host reboot,
// where a fresh supervisor starts with clean state (FATAL does not survive
// a supervisord restart).
func (p *Proc) resetSupervision() {
	p.backoffs = 0
	p.backoffUntil = time.Time{}
	p.lastSupRestart = time.Time{}
	p.failTimes = nil
}

// key identifies a process within the cluster tables.
type procKey struct {
	role string
	node int
	name string
}

// Timing collects the testbed's (scaled) operational delays. Production
// OpenContrail restarts in ~minutes; the testbed defaults to milliseconds
// so chaos experiments run quickly. All durations must be positive.
type Timing struct {
	// SupervisorCheck is the supervisor's child-scan period.
	SupervisorCheck time.Duration
	// AutoRestart is the delay between a supervisor noticing a failed
	// child and the child running again (the paper's R).
	AutoRestart time.Duration
	// Rediscover is the vRouter agent's connection-check period; a failed
	// control connection is replaced within roughly one period (the
	// paper's "typically within a minute").
	Rediscover time.Duration
}

// DefaultTiming returns the scaled defaults.
func DefaultTiming() Timing {
	return Timing{
		SupervisorCheck: 2 * time.Millisecond,
		AutoRestart:     3 * time.Millisecond,
		Rediscover:      5 * time.Millisecond,
	}
}

// Validate reports non-positive durations.
func (t Timing) Validate() error {
	if t.SupervisorCheck <= 0 || t.AutoRestart <= 0 || t.Rediscover <= 0 {
		return fmt.Errorf("cluster: timing durations must be positive: %+v", t)
	}
	return nil
}

// Supervision configures the supervisors' restart policy — the testbed's
// supervisord semantics. A child that dies shortly after a supervised
// restart (within QuickFailWindow) is treated as a failed start attempt:
// the next restart waits an exponentially growing, jittered backoff, and
// after StartRetries consecutive failed attempts the supervisor gives up
// and the child enters Fatal (supervisord's FATAL after startretries).
// Independently, FlapThreshold crashes within FlapWindow mark the child
// Fatal even when each individual run lasted long enough to look healthy.
type Supervision struct {
	// StartRetries is the retry budget: the number of consecutive quick
	// failures tolerated before the child goes Fatal.
	StartRetries int
	// BackoffBase is the backoff before the first retry; it doubles per
	// consecutive quick failure.
	BackoffBase time.Duration
	// BackoffMax caps the exponential backoff.
	BackoffMax time.Duration
	// QuickFailWindow: a crash within this window after a supervised
	// restart counts against the retry budget (the restart "didn't take").
	QuickFailWindow time.Duration
	// FlapWindow and FlapThreshold drive flapping detection: at least
	// FlapThreshold crashes within FlapWindow mark the child Fatal.
	FlapWindow    time.Duration
	FlapThreshold int
	// JitterSeed seeds the backoff jitter source, for reproducible runs.
	JitterSeed int64
}

// DefaultSupervision returns the scaled defaults (supervisord's
// startretries=3, shrunk from seconds to milliseconds like Timing).
func DefaultSupervision() Supervision {
	return Supervision{
		StartRetries:    3,
		BackoffBase:     4 * time.Millisecond,
		BackoffMax:      40 * time.Millisecond,
		QuickFailWindow: 20 * time.Millisecond,
		FlapWindow:      300 * time.Millisecond,
		FlapThreshold:   6,
		JitterSeed:      1,
	}
}

// Validate reports out-of-range supervision parameters.
func (s Supervision) Validate() error {
	if s.StartRetries < 0 {
		return fmt.Errorf("cluster: StartRetries must be non-negative, got %d", s.StartRetries)
	}
	if s.BackoffBase <= 0 || s.BackoffMax <= 0 || s.QuickFailWindow <= 0 || s.FlapWindow <= 0 {
		return fmt.Errorf("cluster: supervision durations must be positive: %+v", s)
	}
	if s.BackoffMax < s.BackoffBase {
		return fmt.Errorf("cluster: BackoffMax %v below BackoffBase %v", s.BackoffMax, s.BackoffBase)
	}
	if s.FlapThreshold < 1 {
		return fmt.Errorf("cluster: FlapThreshold must be at least 1, got %d", s.FlapThreshold)
	}
	return nil
}

// noteCrashLocked records an effective crash (Running → Failed transition
// via KillProcess) for supervision accounting. Hardware failures and
// intentional restarts do not run through here: a host outage is not a
// crash loop, and a node-role restart is the cure, not the disease.
// Callers hold c.mu.
func (c *Cluster) noteCrashLocked(p *Proc, now time.Time) {
	if p.Manual || p.IsSup {
		return // nobody auto-restarts these; the ladder does not apply
	}
	// Flapping detection over a sliding window of crash times.
	cutoff := now.Add(-c.sup.FlapWindow)
	keep := p.failTimes[:0]
	for _, ts := range p.failTimes {
		if ts.After(cutoff) {
			keep = append(keep, ts)
		}
	}
	p.failTimes = append(keep, now)
	if len(p.failTimes) >= c.sup.FlapThreshold {
		p.state = Fatal
		return
	}
	// Retry budget: a crash shortly after a supervised restart means the
	// restart attempt failed.
	if !p.lastSupRestart.IsZero() && now.Sub(p.lastSupRestart) < c.sup.QuickFailWindow {
		p.backoffs++
		if p.backoffs > c.sup.StartRetries {
			p.state = Fatal
			return
		}
		p.backoffUntil = now.Add(c.backoffDelayLocked(p.backoffs))
		return
	}
	// The child ran long enough to count as a stable start: fresh budget.
	p.backoffs = 0
	p.backoffUntil = time.Time{}
}

// backoffDelayLocked computes the jittered exponential backoff for the
// given consecutive-failure count (attempt ≥ 1). Callers hold c.mu.
func (c *Cluster) backoffDelayLocked(attempt int) time.Duration {
	shift := uint(attempt - 1)
	if shift > 20 {
		shift = 20 // cap the exponent well past any sane BackoffMax
	}
	d := c.sup.BackoffBase << shift
	if d <= 0 || d > c.sup.BackoffMax {
		d = c.sup.BackoffMax
	}
	// Up to +50% jitter decorrelates restart storms across children.
	return d + time.Duration(c.rng.Int63n(int64(d)/2+1))
}

// supervisor drives auto-restart for one node-role. It runs as a goroutine
// owned by the Cluster and scans its children every SupervisorCheck tick:
// any Failed, non-manual child past its backoff deadline is restarted
// after the AutoRestart delay, but only while the supervisor process
// itself is effectively alive — matching the paper's semantics that a dead
// supervisor leaves its node-role unsupervised (children then require
// manual restart). Fatal children are never touched: the supervisor has
// given up on them.
type supervisor struct {
	c        *Cluster
	self     procKey
	children []procKey
	stop     chan struct{}
	done     chan struct{}
	// ticker is armed synchronously in Start() before the run goroutine
	// launches, so same-instant supervisor scans fire in a deterministic
	// order on a fake clock.
	ticker vclock.Ticker
}

func (s *supervisor) run() {
	defer close(s.done)
	defer s.ticker.Stop()
	for s.ticker.Wait(s.stop) {
		s.scan()
	}
}

// scan restarts failed auto-restart children if the supervisor is alive.
func (s *supervisor) scan() {
	c := s.c
	now := c.clk.Now()
	c.mu.Lock()
	if !c.aliveLocked(s.self) {
		c.mu.Unlock()
		return
	}
	var toRestart []procKey
	for _, k := range s.children {
		p := c.procs[k]
		if p.state == Failed && !p.Manual && c.hwUpLocked(k) && !now.Before(p.backoffUntil) {
			toRestart = append(toRestart, k)
		}
	}
	c.mu.Unlock()
	if len(toRestart) == 0 {
		return
	}
	// The restart itself takes R.
	if !c.clk.SleepOr(c.timing.AutoRestart, s.stop) {
		return
	}
	c.mu.Lock()
	for _, k := range toRestart {
		p := c.procs[k]
		// Re-check: the supervisor may have died, or the child may have
		// been restarted manually (or gone Fatal via another crash), while
		// the restart was in flight.
		if p.state == Failed && c.aliveLocked(s.self) && c.hwUpLocked(k) {
			p.state = Running
			p.restarts++
			p.lastSupRestart = c.clk.Now()
			c.markDirtyLocked(k)
		}
	}
	c.recomputeLocked()
	c.mu.Unlock()
}
