package cluster

import (
	"fmt"
	"time"
)

// ProcState is the lifecycle state of a testbed process.
type ProcState int

const (
	// Running: the process is operating (subject to its hardware being up).
	Running ProcState = iota
	// Failed: the process has crashed or been killed and awaits restart
	// (automatic by its supervisor, or manual).
	Failed
)

// String names the state.
func (s ProcState) String() string {
	switch s {
	case Running:
		return "running"
	case Failed:
		return "failed"
	default:
		return fmt.Sprintf("ProcState(%d)", int(s))
	}
}

// Proc is one controller or vRouter process instance in the testbed.
// State transitions go through the owning Cluster, which holds the lock
// and propagates liveness to the storage backends.
type Proc struct {
	Name   string // process name from the profile, e.g. "control"
	Role   string // role name, e.g. "Control"; "vRouter" for host procs
	Node   int    // node index for cluster roles; compute host index for vRouter
	Manual bool   // manual restart only (outside supervisor control)
	IsSup  bool   // this is the node-role supervisor

	state    ProcState
	failedAt time.Time
	restarts int // completed restarts, for diagnostics
	unsuper  int // failures that occurred while the supervisor was down
}

// key identifies a process within the cluster tables.
type procKey struct {
	role string
	node int
	name string
}

// Timing collects the testbed's (scaled) operational delays. Production
// OpenContrail restarts in ~minutes; the testbed defaults to milliseconds
// so chaos experiments run quickly. All durations must be positive.
type Timing struct {
	// SupervisorCheck is the supervisor's child-scan period.
	SupervisorCheck time.Duration
	// AutoRestart is the delay between a supervisor noticing a failed
	// child and the child running again (the paper's R).
	AutoRestart time.Duration
	// Rediscover is the vRouter agent's connection-check period; a failed
	// control connection is replaced within roughly one period (the
	// paper's "typically within a minute").
	Rediscover time.Duration
}

// DefaultTiming returns the scaled defaults.
func DefaultTiming() Timing {
	return Timing{
		SupervisorCheck: 2 * time.Millisecond,
		AutoRestart:     3 * time.Millisecond,
		Rediscover:      5 * time.Millisecond,
	}
}

// Validate reports non-positive durations.
func (t Timing) Validate() error {
	if t.SupervisorCheck <= 0 || t.AutoRestart <= 0 || t.Rediscover <= 0 {
		return fmt.Errorf("cluster: timing durations must be positive: %+v", t)
	}
	return nil
}

// supervisor drives auto-restart for one node-role. It runs as a goroutine
// owned by the Cluster and scans its children every SupervisorCheck tick:
// any Failed, non-manual child is restarted after the AutoRestart delay,
// but only while the supervisor process itself is effectively alive —
// matching the paper's semantics that a dead supervisor leaves its
// node-role unsupervised (children then require manual restart).
type supervisor struct {
	c        *Cluster
	self     procKey
	children []procKey
	stop     chan struct{}
	done     chan struct{}
}

func (s *supervisor) run() {
	defer close(s.done)
	ticker := time.NewTicker(s.c.timing.SupervisorCheck)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
			s.scan()
		}
	}
}

// scan restarts failed auto-restart children if the supervisor is alive.
func (s *supervisor) scan() {
	c := s.c
	c.mu.Lock()
	if !c.aliveLocked(s.self) {
		c.mu.Unlock()
		return
	}
	var toRestart []procKey
	for _, k := range s.children {
		p := c.procs[k]
		if p.state == Failed && !p.Manual && c.hwUpLocked(k) {
			toRestart = append(toRestart, k)
		}
	}
	c.mu.Unlock()
	if len(toRestart) == 0 {
		return
	}
	// The restart itself takes R.
	timer := time.NewTimer(c.timing.AutoRestart)
	select {
	case <-s.stop:
		timer.Stop()
		return
	case <-timer.C:
	}
	c.mu.Lock()
	for _, k := range toRestart {
		p := c.procs[k]
		// Re-check: the supervisor may have died, or the child may have
		// been restarted manually, while the restart was in flight.
		if p.state == Failed && c.aliveLocked(s.self) && c.hwUpLocked(k) {
			p.state = Running
			p.restarts++
		}
	}
	c.recomputeLocked()
	c.mu.Unlock()
}
