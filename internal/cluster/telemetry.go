package cluster

import (
	"fmt"
	"sort"
	"time"

	"sdnavail/internal/profile"
	"sdnavail/internal/telemetry"
)

// Telemetry integration. With Config.Telemetry set, the cluster maintains
// a structural mirror of its own availability state — per-process
// liveness, per-quorum-group satisfaction, a control-plane indicator
// (every CP group satisfied, the same predicate the MC simulator uses)
// and a per-host data-plane indicator — and diffs it on every state
// mutation to emit trace events, drive the metrics counters, and feed the
// downtime-attribution ledger.
//
// Two scan granularities keep the enabled path cheap:
//
//   - telemetryScanLocked runs at the end of recomputeLocked, the single
//     point where process/hardware/reachability state propagates. It
//     covers processes, quorum groups, the CP plane and the host DP
//     planes.
//   - telemetryScanAgentsLocked runs after each agent maintenance pass
//     (where forwarding-table flushes and headless transitions happen,
//     without a recompute) and covers only the per-host DP/headless
//     state.
//
// The disabled path costs one nil check per mutation.

// telGroup mirrors one quorum group's satisfaction.
type telGroup struct {
	role      string
	name      string
	need      int
	members   []string
	satisfied bool
}

// telProc mirrors one process's effective liveness.
type telProc struct {
	k       procKey
	p       *Proc
	subject string // "role/node/name"
	alive   bool
	fatal   bool
}

// telState is the cluster's telemetry mirror. Guarded by c.mu.
type telState struct {
	t     *telemetry.Telemetry
	start time.Time // origin of the ledger/trace hour timeline

	procs    []*telProc
	byKey    map[procKey]*telProc
	cpGroups []*telGroup
	dpGroups []*telGroup

	// procsDown is maintained incrementally across scans (every liveness
	// transition adjusts it), so the dirty-set scan can publish the gauge
	// without recounting the whole mirror.
	procsDown int
	cpUp      bool
	cpDownAt  float64
	dpUp      []bool // per compute host
	headless  []bool // per compute host

	cFailures      *telemetry.Counter
	cRestarts      *telemetry.Counter
	cFatal         *telemetry.Counter
	cQuorum        *telemetry.Counter
	cCPOutages     *telemetry.Counter
	cDPOutages     *telemetry.Counter
	cHeadlessEnter *telemetry.Counter
	cHeadlessExit  *telemetry.Counter
	cLinkCuts      *telemetry.Counter
	cLeaderLost    *telemetry.Counter
	cElections     *telemetry.Counter
	cSplitVotes    *telemetry.Counter
	cGrayDetected  *telemetry.Counter
	gProcsDown     *telemetry.Gauge
	hCPOutage      *telemetry.Histogram
	hElection      *telemetry.Histogram
}

// attachTelemetryLocked builds the mirror. Called once from New; the
// cluster is fully assembled and everything is up.
func (c *Cluster) attachTelemetryLocked(t *telemetry.Telemetry) {
	ts := &telState{t: t, start: c.clk.Now(), byKey: map[procKey]*telProc{}}
	for k, p := range c.procs {
		tp := &telProc{
			k: k, p: p,
			subject: fmt.Sprintf("%s/%d/%s", k.role, k.node, k.name),
			alive:   true,
		}
		ts.procs = append(ts.procs, tp)
		ts.byKey[k] = tp
	}
	sort.Slice(ts.procs, func(i, j int) bool {
		a, b := ts.procs[i].k, ts.procs[j].k
		if a.role != b.role {
			return a.role < b.role
		}
		if a.node != b.node {
			return a.node < b.node
		}
		return a.name < b.name
	})
	ts.cpGroups = c.telGroups(profile.ControlPlane)
	ts.dpGroups = c.telGroups(profile.DataPlane)
	ts.dpUp = make([]bool, c.cfg.ComputeHosts)
	ts.headless = make([]bool, c.cfg.ComputeHosts)
	for i := range ts.dpUp {
		ts.dpUp[i] = true
	}
	ts.cpUp = true

	m := t.Metrics
	ts.cFailures = m.Counter("process_failures_total")
	ts.cRestarts = m.Counter("process_restarts_total")
	ts.cFatal = m.Counter("process_fatal_total")
	ts.cQuorum = m.Counter("quorum_transitions_total")
	ts.cCPOutages = m.Counter("cp_outages_total")
	ts.cDPOutages = m.Counter("dp_outages_total")
	ts.cHeadlessEnter = m.Counter("agent_headless_entries_total")
	ts.cHeadlessExit = m.Counter("agent_headless_exits_total")
	ts.cLinkCuts = m.Counter("link_cuts_total")
	ts.cLeaderLost = m.Counter("raft_leader_lost_total")
	ts.cElections = m.Counter("raft_elections_total")
	ts.cSplitVotes = m.Counter("raft_split_votes_total")
	ts.cGrayDetected = m.Counter("raft_gray_detected_total")
	ts.gProcsDown = m.Gauge("processes_down")
	ts.hCPOutage = m.Histogram("cp_outage_hours",
		[]float64{0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1, 3, 10})
	ts.hElection = m.Histogram("raft_election_seconds",
		[]float64{0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1, 3, 10, 30})
	c.telState = ts
}

// telGroups resolves the profile's quorum groups for the plane into
// member-name lists, mirroring the MC simulator's resolveGroups.
func (c *Cluster) telGroups(pl profile.Plane) []*telGroup {
	var out []*telGroup
	n := c.cfg.Topology.ClusterSize
	for _, role := range c.cfg.Profile.ClusterRoles {
		for _, g := range profile.QuorumGroups(c.cfg.Profile, role, pl) {
			need := g.Need.Count(n)
			if need == 0 {
				continue
			}
			var members []string
			for _, proc := range c.cfg.Profile.RoleProcesses(role, false) {
				if proc.PerHost {
					continue
				}
				isMember := proc.Name == g.Name
				if pl == profile.DataPlane && proc.DPGroup != "" {
					isMember = proc.DPGroup == g.Name
				}
				if isMember {
					members = append(members, proc.Name)
				}
			}
			out = append(out, &telGroup{
				role: string(role), name: g.Name, need: need,
				members: members, satisfied: true,
			})
		}
	}
	return out
}

// Telemetry returns the attached telemetry aggregate (nil when disabled).
func (c *Cluster) Telemetry() *telemetry.Telemetry { return c.cfg.Telemetry }

// TelemetryHours returns the current instant on the telemetry timeline:
// hours since the aggregate was attached, on the cluster clock. Callers
// use it to close or snapshot the attribution ledger "as of now".
func (c *Cluster) TelemetryHours() float64 {
	c.mu.Lock()
	ts := c.telState
	c.mu.Unlock()
	if ts == nil {
		return 0
	}
	return c.clk.Now().Sub(ts.start).Hours()
}

// telHoursLocked converts a clock instant to ledger hours.
func (ts *telState) hours(at time.Time) float64 {
	return at.Sub(ts.start).Hours()
}

// modeKeyLocked names the failure mode keeping process k from being
// usable: hardware first (rack > host > vm), then partition, then the
// process itself. Callers hold c.mu.
func (c *Cluster) modeKeyLocked(k procKey) string {
	loc := c.loc[k]
	switch {
	case loc.rack != "" && !c.rackUp[loc.rack]:
		return "rack:" + loc.rack
	case loc.host != "" && !c.hostUp[loc.host]:
		return "host:" + loc.host
	case loc.vm != "" && !c.vmUp[loc.vm]:
		return "vm:" + loc.vm
	}
	if p, ok := c.procs[k]; ok && p.state == Running &&
		k.role != string(c.cfg.Profile.HostRole) {
		if !c.reachableLocked(k.node) {
			return fmt.Sprintf("partition:node%d", k.node)
		}
		if !c.hostReachableLocked(loc.host) {
			return c.graphCutModeLocked(loc.host)
		}
	}
	return "process:" + k.name
}

// telGroupSatisfiedLocked reports whether at least need nodes have every
// member process usable — the cluster-side twin of mc.groupsSatisfied.
func (c *Cluster) telGroupSatisfiedLocked(g *telGroup) bool {
	n := c.cfg.Topology.ClusterSize
	count := 0
	for node := 0; node < n; node++ {
		ok := true
		for _, m := range g.members {
			if !c.usableLocked(procKey{role: g.role, node: node, name: m}) {
				ok = false
				break
			}
		}
		if ok {
			count++
			if count >= g.need {
				return true
			}
		}
	}
	return false
}

// telGroupBlamesLocked adds the failure modes of the group's non-usable
// members to the set. Callers hold c.mu.
func (c *Cluster) telGroupBlamesLocked(g *telGroup, set map[string]bool) {
	n := c.cfg.Topology.ClusterSize
	for node := 0; node < n; node++ {
		for _, m := range g.members {
			k := procKey{role: g.role, node: node, name: m}
			if !c.usableLocked(k) {
				set[c.modeKeyLocked(k)] = true
			}
		}
	}
}

// telProcDiffLocked diffs one mirror row against the process's effective
// liveness and fatal state, emitting trace events and counter bumps and
// adjusting the maintained procsDown count on transitions. Callers hold
// c.mu.
func (c *Cluster) telProcDiffLocked(tp *telProc, now time.Time, h float64) {
	ts := c.telState
	if alive := c.aliveLocked(tp.k); alive != tp.alive {
		tp.alive = alive
		if alive {
			ts.procsDown--
			ts.cRestarts.Inc()
			ts.t.Trace.Record(telemetry.Event{
				At: now, AtHours: h, Kind: telemetry.EventProcessUp, Subject: tp.subject,
			})
		} else {
			ts.procsDown++
			ts.cFailures.Inc()
			ts.t.Trace.Record(telemetry.Event{
				At: now, AtHours: h, Kind: telemetry.EventProcessDown, Subject: tp.subject,
				Detail: c.modeKeyLocked(tp.k),
			})
		}
	}
	if fatal := tp.p.state == Fatal; fatal != tp.fatal {
		tp.fatal = fatal
		if fatal {
			ts.cFatal.Inc()
			ts.t.Trace.Record(telemetry.Event{
				At: now, AtHours: h, Kind: telemetry.EventProcessFatal, Subject: tp.subject,
			})
		}
	}
}

// telGroupDiffLocked re-evaluates one quorum group and records a
// transition if its satisfaction flipped. Callers hold c.mu.
func (c *Cluster) telGroupDiffLocked(g *telGroup, now time.Time, h float64) {
	ts := c.telState
	sat := c.telGroupSatisfiedLocked(g)
	if sat == g.satisfied {
		return
	}
	g.satisfied = sat
	ts.cQuorum.Inc()
	kind := telemetry.EventQuorumLost
	if sat {
		kind = telemetry.EventQuorumRegained
	}
	ts.t.Trace.Record(telemetry.Event{
		At: now, AtHours: h, Kind: kind, Subject: g.role + "/" + g.name,
	})
}

// telCPPlaneLocked folds the CP-group satisfaction flags into the
// control-plane indicator and records outage open/close transitions.
// Callers hold c.mu.
func (c *Cluster) telCPPlaneLocked(now time.Time, h float64) {
	ts := c.telState
	cpUp := true
	for _, g := range ts.cpGroups {
		if !g.satisfied {
			cpUp = false
			break
		}
	}
	if cpUp == ts.cpUp {
		return
	}
	ts.cpUp = cpUp
	if !cpUp {
		set := map[string]bool{}
		for _, g := range ts.cpGroups {
			if !g.satisfied {
				c.telGroupBlamesLocked(g, set)
			}
		}
		blames := sortedModeSet(set)
		ts.cpDownAt = h
		ts.cCPOutages.Inc()
		ts.t.Ledger.PlaneDown("cp", h, blames)
		ts.t.Trace.Record(telemetry.Event{
			At: now, AtHours: h, Kind: telemetry.EventCPDown, Subject: "cp", Modes: blames,
		})
	} else {
		ts.t.Ledger.PlaneUp("cp", h)
		ts.hCPOutage.Observe(h - ts.cpDownAt)
		ts.t.Trace.Record(telemetry.Event{
			At: now, AtHours: h, Kind: telemetry.EventCPUp, Subject: "cp",
		})
	}
}

// telemetryScanLocked diffs the full structural mirror: every process,
// every quorum group, the CP plane and the per-host DP planes. Called from
// the full-rescan recompute path. Callers hold c.mu.
func (c *Cluster) telemetryScanLocked() {
	ts := c.telState
	if ts == nil {
		return
	}
	now := c.clk.Now()
	h := ts.hours(now)

	for _, tp := range ts.procs {
		c.telProcDiffLocked(tp, now, h)
	}
	ts.gProcsDown.Set(float64(ts.procsDown))

	for _, groups := range [][]*telGroup{ts.cpGroups, ts.dpGroups} {
		for _, g := range groups {
			c.telGroupDiffLocked(g, now, h)
		}
	}
	c.telCPPlaneLocked(now, h)
	c.telemetryScanAgentsLocked(now, h)
}

// telemetryScanDirtyLocked is the incremental twin of telemetryScanLocked:
// it diffs only the dirty processes (already sorted in the mirror's order,
// so trace events come out in the same sequence a full scan would emit)
// and re-evaluates only the quorum groups a dirty process feeds. Group
// satisfaction depends solely on member usability, and every usability
// change marks the member dirty — so untouched groups cannot have flipped.
// The plane fold and the agent scan run as in the full path (both are
// O(groups + hosts), not O(processes)). Callers hold c.mu.
func (c *Cluster) telemetryScanDirtyLocked(dirty []procKey) {
	ts := c.telState
	if ts == nil {
		return
	}
	now := c.clk.Now()
	h := ts.hours(now)

	for _, k := range dirty {
		if tp := ts.byKey[k]; tp != nil {
			c.telProcDiffLocked(tp, now, h)
		}
	}
	ts.gProcsDown.Set(float64(ts.procsDown))

	for _, groups := range [][]*telGroup{ts.cpGroups, ts.dpGroups} {
		for _, g := range groups {
			if !groupTouched(g, dirty) {
				continue
			}
			c.telGroupDiffLocked(g, now, h)
		}
	}
	c.telCPPlaneLocked(now, h)
	c.telemetryScanAgentsLocked(now, h)
}

// groupTouched reports whether any dirty process is a member of the group.
func groupTouched(g *telGroup, dirty []procKey) bool {
	for _, k := range dirty {
		if k.role != g.role {
			continue
		}
		for _, m := range g.members {
			if k.name == m {
				return true
			}
		}
	}
	return false
}

// telemetryScanAgentsLocked diffs the per-host DP and headless state —
// the cheap scan hooked into every agent maintenance pass. Callers hold
// c.mu.
func (c *Cluster) telemetryScanAgentsLocked(now time.Time, h float64) {
	ts := c.telState
	if ts == nil {
		return
	}
	for i, a := range c.agents {
		up := c.aliveLocked(a.agentKey()) && c.aliveLocked(a.dpdkKey()) && !a.flushed
		if up != ts.dpUp[i] {
			ts.dpUp[i] = up
			plane := "dp:" + a.host
			if !up {
				blames := c.telDPBlamesLocked(a)
				ts.cDPOutages.Inc()
				ts.t.Ledger.PlaneDown(plane, h, blames)
				ts.t.Trace.Record(telemetry.Event{
					At: now, AtHours: h, Kind: telemetry.EventDPDown, Subject: plane, Modes: blames,
				})
			} else {
				ts.t.Ledger.PlaneUp(plane, h)
				ts.t.Trace.Record(telemetry.Event{
					At: now, AtHours: h, Kind: telemetry.EventDPUp, Subject: plane,
				})
			}
		}
		if headless := a.headlessActiveLocked(); headless != ts.headless[i] {
			ts.headless[i] = headless
			if headless {
				ts.cHeadlessEnter.Inc()
				ts.t.Trace.Record(telemetry.Event{
					At: now, AtHours: h, Kind: telemetry.EventAgentHeadless, Subject: a.host,
				})
			} else {
				ts.cHeadlessExit.Inc()
				ts.t.Trace.Record(telemetry.Event{
					At: now, AtHours: h, Kind: telemetry.EventAgentConnected, Subject: a.host,
				})
			}
		}
	}
}

// telemetryAgentPassLocked runs the agent-state scan on its own — the
// hook for agent maintenance passes, which mutate flush/headless state
// without a recompute. Callers hold c.mu.
func (c *Cluster) telemetryAgentPassLocked() {
	ts := c.telState
	if ts == nil {
		return
	}
	now := c.clk.Now()
	c.telemetryScanAgentsLocked(now, ts.hours(now))
}

// telDPBlamesLocked names the failure modes taking a host data plane
// down: dead local vRouter processes first; otherwise (a flushed
// forwarding table) the dead members of the unsatisfied shared-DP quorum
// groups. Callers hold c.mu.
func (c *Cluster) telDPBlamesLocked(a *vRouterAgent) []string {
	set := map[string]bool{}
	for _, k := range []procKey{a.agentKey(), a.dpdkKey()} {
		if !c.aliveLocked(k) {
			set[c.modeKeyLocked(k)] = true
		}
	}
	if len(set) == 0 {
		for _, g := range c.telState.dpGroups {
			if !g.satisfied {
				c.telGroupBlamesLocked(g, set)
			}
		}
	}
	return sortedModeSet(set)
}

// telRaftEventLocked publishes one store leadership transition: a trace
// event, the raft counters, and — for elections and gray detections — a
// recovery-time sample. Callers hold c.mu.
func (c *Cluster) telRaftEventLocked(ev RaftEvent) {
	ts := c.telState
	if ts == nil {
		return
	}
	h := ts.hours(ev.At)
	e := telemetry.Event{
		At: ev.At, AtHours: h, Subject: ev.Store,
		Detail: fmt.Sprintf("node%d term%d", ev.Node, ev.Term),
	}
	switch ev.Kind {
	case RaftLeaderLost:
		ts.cLeaderLost.Inc()
		e.Kind = telemetry.EventLeaderLost
	case RaftElected:
		ts.cElections.Inc()
		ts.hElection.Observe(ev.Duration.Seconds())
		ts.t.Recovery.Observe("election/"+ev.Store, ev.Duration)
		e.Kind = telemetry.EventLeaderElected
	case RaftSplitVote:
		ts.cSplitVotes.Inc()
		e.Kind = telemetry.EventSplitVote
		e.Detail = fmt.Sprintf("term%d", ev.Term)
	case RaftGrayDetected:
		ts.cGrayDetected.Inc()
		ts.t.Recovery.Observe("graydetect/"+ev.Store, ev.Duration)
		e.Kind = telemetry.EventGrayDetected
	default:
		return
	}
	ts.t.Trace.Record(e)
}

// telemetryLinkEventLocked records a mesh link cut/heal. Callers hold
// c.mu.
func (c *Cluster) telemetryLinkEventLocked(kind string, a, b int) {
	ts := c.telState
	if ts == nil {
		return
	}
	if kind == telemetry.EventLinkCut {
		ts.cLinkCuts.Inc()
	}
	now := c.clk.Now()
	if a > b {
		a, b = b, a
	}
	ts.t.Trace.Record(telemetry.Event{
		At: now, AtHours: ts.hours(now), Kind: kind,
		Subject: fmt.Sprintf("node%d-node%d", a, b),
	})
}

// sortedModeSet flattens a mode set deterministically.
func sortedModeSet(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for m := range set {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}
