package cluster

import (
	"fmt"
	"sort"
	"sync"
)

// This file implements the clustered storage substrates of the Database
// role: a RAFT-style replicated key/value store (the Cassandra stand-in),
// a quorum sequencer for unique system-generated IDs (the Zookeeper
// stand-in), and a replicated append-only event log (the Kafka stand-in).
// Each is clustered 2N+1 and requires a majority of live replicas, exactly
// matching the paper's "2 of 3" Database quorum processes.

// ErrNoQuorum is returned when fewer than a majority of replicas are alive.
var ErrNoQuorum = fmt.Errorf("cluster: quorum lost")

// ErrNoLeader is returned by the write path in timed-election mode while
// no leader holds the current term (an election is pending). It wraps
// ErrNoQuorum so existing errors.Is(err, ErrNoQuorum) checks keep
// treating election windows as unavailability.
var ErrNoLeader = fmt.Errorf("%w: no leader", ErrNoQuorum)

// versioned is a KV entry with a write version for last-writer-wins
// reconciliation. Versions are 1-based indexes into the replicated log.
type versioned struct {
	value   string
	version uint64
}

// logEntry is one committed operation in the replicated log.
type logEntry struct {
	term  uint64
	del   bool
	key   string
	value string
}

// QuorumStore is a replicated key/value store built as a RAFT-style
// replicated state machine. A single authoritative log records every
// committed write; each replica holds a materialized KV view plus an
// applied index recording how much of the log it has acknowledged.
// Writes require a majority of replicas to be alive (the commit
// condition) and, in timed-election mode, a current leader; reads merge a
// majority of fresh replicas by version.
//
// A replica that returns from the dead holds stale data. By default the
// store reconciles it synchronously on revival by replaying the log
// entries it missed. With deferred catch-up enabled the revived replica
// instead enters a catching-up state: it keeps accepting new writes but
// is excluded from read quorums until an explicit CatchUp pass — driven
// by the cluster maintenance loop after the configured catch-up latency —
// replays the gap.
//
// Leadership runs in one of two modes. Instant mode (the default, and the
// pre-existing behaviour as observed by callers) re-elects synchronously
// inside SetAlive: the lowest-indexed electable replica leads whenever a
// majority is alive, and writes never wait on an election. Timed mode
// (RaftTuning.ElectionMax > 0) runs real randomized election timeouts:
// followers hold per-replica deadlines refreshed by leader heartbeats on
// every Tick, leader loss leaves the store leaderless until a timeout
// expires and a candidate collects a majority of votes, and the write
// path fails with ErrNoLeader in between.
//
// Byzantine fault injection is built in: a replica flagged with wrong
// reads answers reads with a corrupted value carrying a winning version;
// a replica flagged with ack-drop acknowledges writes (advancing its
// applied index, so it stays "fresh") without applying them. A gray
// leader — a leader serving wrong reads — is deposed by the detector
// after RaftTuning.GrayDetect and marked suspect until cleared.
type QuorumStore struct {
	name string

	mu       sync.Mutex
	replicas []map[string]versioned
	alive    []bool
	catching []bool // revived but not yet reconciled; excluded from reads
	deferred bool   // revival waits for an explicit CatchUp

	log     []logEntry
	commit  int   // committed log length; every accepted write commits
	applied []int // log prefix replica i has acknowledged

	raft raftState
}

// NewQuorumStore creates a store with n replicas, all alive, with replica
// 0 leading term 1 in instant-election mode.
func NewQuorumStore(name string, n int) *QuorumStore {
	s := &QuorumStore{name: name}
	for i := 0; i < n; i++ {
		s.replicas = append(s.replicas, map[string]versioned{})
		s.alive = append(s.alive, true)
		s.catching = append(s.catching, false)
		s.applied = append(s.applied, 0)
	}
	s.raft.init(n)
	return s
}

// Name returns the store name.
func (s *QuorumStore) Name() string { return s.name }

// Replicas returns the replica count.
func (s *QuorumStore) Replicas() int { return len(s.replicas) }

// SetDeferredCatchUp selects the revival policy: when on, a replica that
// comes back is excluded from read quorums until CatchUp runs; when off
// (the default), revival replays the missed log synchronously.
func (s *QuorumStore) SetDeferredCatchUp(on bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.deferred = on
}

// SetAlive marks replica i up or down. A replica that returns keeps its
// (possibly stale) data; it is reconciled immediately by log replay, or —
// with deferred catch-up — parked in the catching-up state until CatchUp.
// Killing the leader triggers re-election: synchronous in instant mode,
// timeout-driven in timed mode.
func (s *QuorumStore) SetAlive(i int, alive bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.raft.now()
	revived := alive && !s.alive[i]
	died := !alive && s.alive[i]
	s.alive[i] = alive
	if !alive {
		s.catching[i] = false
		if died {
			s.raftMembershipChangedLocked(now)
		}
		return
	}
	if !revived {
		return
	}
	if s.deferred {
		s.catching[i] = true
	} else {
		s.replayLocked(i)
	}
	if s.raft.timed() {
		s.raft.deadline[i] = now.Add(s.raft.randTimeout())
	}
	s.raftMembershipChangedLocked(now)
}

// CatchUp replays the log entries replica i missed, promoting it back
// into read quorums. It is a no-op for replicas that are down or already
// fresh.
func (s *QuorumStore) CatchUp(i int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if i < 0 || i >= len(s.replicas) || !s.alive[i] {
		return
	}
	s.replayLocked(i)
	s.raftMembershipChangedLocked(s.raft.now())
}

// CatchingUp reports whether replica i is alive but still reconciling.
func (s *QuorumStore) CatchingUp(i int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return i >= 0 && i < len(s.catching) && s.catching[i]
}

// CatchingCount returns the number of replicas still reconciling.
func (s *QuorumStore) CatchingCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, c := range s.catching {
		if c {
			n++
		}
	}
	return n
}

// replayLocked replays log[applied[i]:commit] onto replica i and clears
// its catch-up state. Replay is idempotent and ordered, so it composes
// with the direct writes a catching replica keeps receiving: a put
// applies only when the replica's copy is older than the entry, a delete
// only when the copy is not newer. An ack-drop replica has already
// "acknowledged" the whole log, so replay rehydrates nothing — the lie
// persists, which is the point of the fault. Callers hold mu.
func (s *QuorumStore) replayLocked(i int) {
	for idx := s.applied[i]; idx < s.commit; idx++ {
		e := s.log[idx]
		ver := uint64(idx + 1)
		if e.del {
			if v, ok := s.replicas[i][e.key]; ok && v.version <= ver {
				delete(s.replicas[i], e.key)
			}
		} else if v, ok := s.replicas[i][e.key]; !ok || v.version < ver {
			s.replicas[i][e.key] = versioned{value: e.value, version: ver}
		}
	}
	s.applied[i] = s.commit
	s.catching[i] = false
}

// Alive reports replica i's state.
func (s *QuorumStore) Alive(i int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.alive[i]
}

// aliveCountLocked counts live replicas; callers hold mu.
func (s *QuorumStore) aliveCountLocked() int {
	n := 0
	for _, a := range s.alive {
		if a {
			n++
		}
	}
	return n
}

// freshCountLocked counts replicas eligible for reads: alive and not
// catching up. Callers hold mu.
func (s *QuorumStore) freshCountLocked() int {
	n := 0
	for i, a := range s.alive {
		if a && !s.catching[i] {
			n++
		}
	}
	return n
}

// readQuorumErrLocked builds the no-quorum error for the read path,
// naming catch-up when it is the cause. Callers hold mu.
func (s *QuorumStore) readQuorumErrLocked() error {
	if n := s.aliveCountLocked() - s.freshCountLocked(); n > 0 {
		return fmt.Errorf("%w: %s has %d/%d fresh replicas (%d catching up)",
			ErrNoQuorum, s.name, s.freshCountLocked(), len(s.replicas), n)
	}
	return fmt.Errorf("%w: %s has %d/%d replicas", ErrNoQuorum, s.name, s.aliveCountLocked(), len(s.replicas))
}

// HasQuorum reports whether a majority of replicas is alive.
func (s *QuorumStore) HasQuorum() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.aliveCountLocked() >= len(s.replicas)/2+1
}

// writeQuorumErrLocked reports why a write cannot commit: no alive
// majority, or — in timed mode — no elected leader. Callers hold mu.
func (s *QuorumStore) writeQuorumErrLocked() error {
	if s.aliveCountLocked() < len(s.replicas)/2+1 {
		return fmt.Errorf("%w: %s has %d/%d replicas", ErrNoQuorum, s.name, s.aliveCountLocked(), len(s.replicas))
	}
	if s.raft.timed() && s.raft.leader < 0 {
		return fmt.Errorf("%w: %s election pending at term %d", ErrNoLeader, s.name, s.raft.term)
	}
	return nil
}

// appendLocked commits one log entry and fans it out to the live
// replicas. Fresh and catching replicas apply it directly (catching
// replicas do not advance their applied index — CatchUp's ordered replay
// owns that); ack-drop replicas acknowledge without applying; down
// replicas receive nothing and recover by replay. Callers hold mu.
func (s *QuorumStore) appendLocked(e logEntry) {
	e.term = s.raft.term
	s.log = append(s.log, e)
	s.commit = len(s.log)
	ver := uint64(s.commit)
	for i, alive := range s.alive {
		if !alive {
			continue
		}
		if s.raft.ackDrop[i] {
			// Byzantine acknowledge-but-drop: the replica claims the
			// whole log without holding the data.
			s.applied[i] = s.commit
			continue
		}
		if e.del {
			delete(s.replicas[i], e.key)
		} else {
			s.replicas[i][e.key] = versioned{value: e.value, version: ver}
		}
		if !s.catching[i] {
			s.applied[i] = s.commit
		}
	}
}

// Put commits key=value through the replicated log. It fails without an
// alive majority, and in timed-election mode additionally fails with
// ErrNoLeader while no leader holds the term.
func (s *QuorumStore) Put(key, value string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.writeQuorumErrLocked(); err != nil {
		return err
	}
	s.appendLocked(logEntry{key: key, value: value})
	return nil
}

// Get reads the freshest value among a majority of fresh replicas.
// Replicas still catching up are excluded: they may serve arbitrarily old
// versions. A replica flagged with wrong reads contributes a corrupted
// value carrying a version high enough to win the merge — the Byzantine
// failure the binary up/down model cannot see. A replica the gray
// detector has deposed (suspect) is quarantined from read quorums until
// its flags clear, so detection restores honest reads. The boolean
// reports presence.
func (s *QuorumStore) Get(key string) (string, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.freshCountLocked() < len(s.replicas)/2+1 {
		return "", false, s.readQuorumErrLocked()
	}
	best := versioned{}
	found := false
	for i, alive := range s.alive {
		if !alive || s.catching[i] || s.raft.suspect[i] {
			continue
		}
		if v, ok := s.replicas[i][key]; ok {
			if s.raft.wrongReads[i] {
				v = versioned{value: v.value + "\x00corrupt", version: v.version + uint64(s.commit) + 1}
			}
			if !found || v.version > best.version {
				best = v
				found = true
			}
		}
	}
	if !found {
		return "", false, nil
	}
	return best.value, true, nil
}

// Delete removes a key through the replicated log; it fails without an
// alive majority (and without a leader in timed mode).
func (s *QuorumStore) Delete(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.writeQuorumErrLocked(); err != nil {
		return err
	}
	s.appendLocked(logEntry{del: true, key: key})
	return nil
}

// Keys returns the sorted union of keys across fresh replicas; it fails
// without a read majority.
func (s *QuorumStore) Keys() ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.freshCountLocked() < len(s.replicas)/2+1 {
		return nil, s.readQuorumErrLocked()
	}
	set := map[string]bool{}
	for i, alive := range s.alive {
		if alive && !s.catching[i] && !s.raft.suspect[i] {
			for k := range s.replicas[i] {
				set[k] = true
			}
		}
	}
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys, nil
}

// CommitIndex returns the committed log length.
func (s *QuorumStore) CommitIndex() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.commit
}

// AppliedIndex returns the log prefix replica i has acknowledged.
func (s *QuorumStore) AppliedIndex(i int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if i < 0 || i >= len(s.applied) {
		return 0
	}
	return s.applied[i]
}

// Sequencer allocates unique, monotonically increasing IDs with a majority
// of live voters — the testbed's Zookeeper.
type Sequencer struct {
	mu      sync.Mutex
	counter []uint64
	alive   []bool
}

// NewSequencer creates a sequencer with n voters, all alive.
func NewSequencer(n int) *Sequencer {
	return &Sequencer{counter: make([]uint64, n), alive: allTrue(n)}
}

func allTrue(n int) []bool {
	b := make([]bool, n)
	for i := range b {
		b[i] = true
	}
	return b
}

// SetAlive marks voter i up or down.
func (q *Sequencer) SetAlive(i int, alive bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.alive[i] = alive
}

// HasQuorum reports whether a majority of voters is alive.
func (q *Sequencer) HasQuorum() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.aliveCountLocked() >= len(q.alive)/2+1
}

func (q *Sequencer) aliveCountLocked() int {
	n := 0
	for _, a := range q.alive {
		if a {
			n++
		}
	}
	return n
}

// Next returns a unique ID agreed by a majority: one more than the highest
// counter among live voters, then recorded on all of them.
func (q *Sequencer) Next() (uint64, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.aliveCountLocked() < len(q.alive)/2+1 {
		return 0, fmt.Errorf("%w: sequencer has %d/%d voters", ErrNoQuorum, q.aliveCountLocked(), len(q.alive))
	}
	max := uint64(0)
	for i, alive := range q.alive {
		if alive && q.counter[i] > max {
			max = q.counter[i]
		}
	}
	next := max + 1
	for i, alive := range q.alive {
		if alive {
			q.counter[i] = next
		}
	}
	return next, nil
}

// EventLog is a replicated append-only log — the testbed's Kafka. Appends
// need a majority; reads serve from any live replica (they all hold the
// quorum-committed prefix).
type EventLog struct {
	mu      sync.Mutex
	entries []string
	alive   []bool
}

// NewEventLog creates a log with n replicas, all alive.
func NewEventLog(n int) *EventLog {
	return &EventLog{alive: allTrue(n)}
}

// SetAlive marks replica i up or down.
func (l *EventLog) SetAlive(i int, alive bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.alive[i] = alive
}

// HasQuorum reports whether a majority of replicas is alive.
func (l *EventLog) HasQuorum() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.aliveCountLocked() >= len(l.alive)/2+1
}

func (l *EventLog) aliveCountLocked() int {
	n := 0
	for _, a := range l.alive {
		if a {
			n++
		}
	}
	return n
}

// Append commits an entry; it fails without a majority.
func (l *EventLog) Append(entry string) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.aliveCountLocked() < len(l.alive)/2+1 {
		return 0, fmt.Errorf("%w: event log has %d/%d replicas", ErrNoQuorum, l.aliveCountLocked(), len(l.alive))
	}
	l.entries = append(l.entries, entry)
	return len(l.entries) - 1, nil
}

// ReadFrom returns entries at and after offset; it fails when no replica is
// alive.
func (l *EventLog) ReadFrom(offset int) ([]string, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.aliveCountLocked() == 0 {
		return nil, fmt.Errorf("%w: event log has no live replicas", ErrNoQuorum)
	}
	if offset < 0 || offset > len(l.entries) {
		return nil, fmt.Errorf("cluster: offset %d out of range [0,%d]", offset, len(l.entries))
	}
	out := make([]string, len(l.entries)-offset)
	copy(out, l.entries[offset:])
	return out, nil
}

// Len returns the committed length.
func (l *EventLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}
