package cluster

import (
	"fmt"
	"sort"
	"sync"
)

// This file implements the clustered storage substrates of the Database
// role: a replicated quorum key/value store (the Cassandra stand-in), a
// quorum sequencer for unique system-generated IDs (the Zookeeper
// stand-in), and a replicated append-only event log (the Kafka stand-in).
// Each is clustered 2N+1 and requires a majority of live replicas, exactly
// matching the paper's "2 of 3" Database quorum processes.

// ErrNoQuorum is returned when fewer than a majority of replicas are alive.
var ErrNoQuorum = fmt.Errorf("cluster: quorum lost")

// versioned is a KV entry with a write version for last-writer-wins repair.
type versioned struct {
	value   string
	version uint64
}

// QuorumStore is a replicated key/value store. Writes and reads require a
// majority of replicas to be alive; read repair reconciles divergent
// replicas by highest version.
//
// A replica that returns from the dead holds stale data. By default the
// store reconciles it synchronously on revival (instant anti-entropy, the
// pre-existing behaviour as observed by callers). With deferred catch-up
// enabled the revived replica instead enters a catching-up state: it keeps
// accepting writes but is excluded from read quorums until an explicit
// CatchUp pass — driven by the cluster maintenance loop after the
// configured catch-up latency — reconciles it. Writes record hinted
// handoffs for down replicas so the reconciliation is incremental.
type QuorumStore struct {
	name string

	mu       sync.Mutex
	replicas []map[string]versioned
	alive    []bool
	catching []bool            // revived but not yet reconciled; excluded from reads
	hints    []map[string]bool // keys written or deleted while replica i was down
	deferred bool              // revival waits for an explicit CatchUp
	version  uint64
}

// NewQuorumStore creates a store with n replicas, all alive.
func NewQuorumStore(name string, n int) *QuorumStore {
	s := &QuorumStore{name: name}
	for i := 0; i < n; i++ {
		s.replicas = append(s.replicas, map[string]versioned{})
		s.alive = append(s.alive, true)
		s.catching = append(s.catching, false)
		s.hints = append(s.hints, map[string]bool{})
	}
	return s
}

// Replicas returns the replica count.
func (s *QuorumStore) Replicas() int { return len(s.replicas) }

// SetDeferredCatchUp selects the revival policy: when on, a replica that
// comes back is excluded from read quorums until CatchUp runs; when off
// (the default), revival reconciles synchronously.
func (s *QuorumStore) SetDeferredCatchUp(on bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.deferred = on
}

// SetAlive marks replica i up or down. A replica that returns keeps its
// (possibly stale) data; it is reconciled immediately, or — with deferred
// catch-up — parked in the catching-up state until CatchUp.
func (s *QuorumStore) SetAlive(i int, alive bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	revived := alive && !s.alive[i]
	s.alive[i] = alive
	if !alive {
		s.catching[i] = false
		return
	}
	if !revived {
		return
	}
	if s.deferred {
		s.catching[i] = true
	} else {
		s.resyncLocked(i)
	}
}

// CatchUp runs the anti-entropy pass for replica i, promoting it back into
// read quorums. It is a no-op for replicas that are down or already fresh.
func (s *QuorumStore) CatchUp(i int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if i < 0 || i >= len(s.replicas) || !s.alive[i] {
		return
	}
	s.resyncLocked(i)
}

// CatchingUp reports whether replica i is alive but still reconciling.
func (s *QuorumStore) CatchingUp(i int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return i >= 0 && i < len(s.catching) && s.catching[i]
}

// CatchingCount returns the number of replicas still reconciling.
func (s *QuorumStore) CatchingCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, c := range s.catching {
		if c {
			n++
		}
	}
	return n
}

// resyncLocked reconciles replica i against the fresh replicas and clears
// its catch-up state. Hinted handoff makes the pass incremental: only keys
// touched while the replica was down are examined. A hinted key absent
// from every fresh replica was deleted during the outage and is purged.
// With no fresh peer available the replica's own data is already the best
// copy, so it is promoted as-is; versioned read repair mops up any
// residual divergence. Callers hold mu.
func (s *QuorumStore) resyncLocked(i int) {
	hasFresh := false
	for j := range s.replicas {
		if j != i && s.alive[j] && !s.catching[j] {
			hasFresh = true
			break
		}
	}
	if hasFresh {
		for key := range s.hints[i] {
			best, found := versioned{}, false
			for j := range s.replicas {
				if j == i || !s.alive[j] || s.catching[j] {
					continue
				}
				if v, ok := s.replicas[j][key]; ok && (!found || v.version > best.version) {
					best, found = v, true
				}
			}
			if !found {
				delete(s.replicas[i], key)
				continue
			}
			if v, ok := s.replicas[i][key]; !ok || v.version < best.version {
				s.replicas[i][key] = best
			}
		}
	}
	s.hints[i] = map[string]bool{}
	s.catching[i] = false
}

// Alive reports replica i's state.
func (s *QuorumStore) Alive(i int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.alive[i]
}

// aliveCountLocked counts live replicas; callers hold mu.
func (s *QuorumStore) aliveCountLocked() int {
	n := 0
	for _, a := range s.alive {
		if a {
			n++
		}
	}
	return n
}

// freshCountLocked counts replicas eligible for reads: alive and not
// catching up. Callers hold mu.
func (s *QuorumStore) freshCountLocked() int {
	n := 0
	for i, a := range s.alive {
		if a && !s.catching[i] {
			n++
		}
	}
	return n
}

// readQuorumErrLocked builds the no-quorum error for the read path,
// naming catch-up when it is the cause. Callers hold mu.
func (s *QuorumStore) readQuorumErrLocked() error {
	if n := s.aliveCountLocked() - s.freshCountLocked(); n > 0 {
		return fmt.Errorf("%w: %s has %d/%d fresh replicas (%d catching up)",
			ErrNoQuorum, s.name, s.freshCountLocked(), len(s.replicas), n)
	}
	return fmt.Errorf("%w: %s has %d/%d replicas", ErrNoQuorum, s.name, s.aliveCountLocked(), len(s.replicas))
}

// HasQuorum reports whether a majority of replicas is alive.
func (s *QuorumStore) HasQuorum() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.aliveCountLocked() >= len(s.replicas)/2+1
}

// Put writes key=value to all live replicas — including ones still
// catching up, which keeps the reconciliation window from growing — and
// records a hint for every down replica. It fails without a majority.
func (s *QuorumStore) Put(key, value string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.aliveCountLocked() < len(s.replicas)/2+1 {
		return fmt.Errorf("%w: %s has %d/%d replicas", ErrNoQuorum, s.name, s.aliveCountLocked(), len(s.replicas))
	}
	s.version++
	v := versioned{value: value, version: s.version}
	for i, alive := range s.alive {
		if alive {
			s.replicas[i][key] = v
		} else {
			s.hints[i][key] = true
		}
	}
	return nil
}

// Get reads the freshest value among a majority of fresh replicas and
// repairs stale fresh replicas. Replicas still catching up are excluded:
// they may serve arbitrarily old versions. The boolean reports presence.
func (s *QuorumStore) Get(key string) (string, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.freshCountLocked() < len(s.replicas)/2+1 {
		return "", false, s.readQuorumErrLocked()
	}
	best := versioned{}
	found := false
	for i, alive := range s.alive {
		if !alive || s.catching[i] {
			continue
		}
		if v, ok := s.replicas[i][key]; ok && (!found || v.version > best.version) {
			best = v
			found = true
		}
	}
	if !found {
		return "", false, nil
	}
	for i, alive := range s.alive { // read repair
		if alive && !s.catching[i] {
			if v, ok := s.replicas[i][key]; !ok || v.version < best.version {
				s.replicas[i][key] = best
			}
		}
	}
	return best.value, true, nil
}

// Delete removes a key from all live replicas and hints down ones; it
// fails without a majority.
func (s *QuorumStore) Delete(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.aliveCountLocked() < len(s.replicas)/2+1 {
		return fmt.Errorf("%w: %s has %d/%d replicas", ErrNoQuorum, s.name, s.aliveCountLocked(), len(s.replicas))
	}
	for i, alive := range s.alive {
		if alive {
			delete(s.replicas[i], key)
		} else {
			s.hints[i][key] = true
		}
	}
	return nil
}

// Keys returns the sorted union of keys across fresh replicas; it fails
// without a read majority.
func (s *QuorumStore) Keys() ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.freshCountLocked() < len(s.replicas)/2+1 {
		return nil, s.readQuorumErrLocked()
	}
	set := map[string]bool{}
	for i, alive := range s.alive {
		if alive && !s.catching[i] {
			for k := range s.replicas[i] {
				set[k] = true
			}
		}
	}
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys, nil
}

// Sequencer allocates unique, monotonically increasing IDs with a majority
// of live voters — the testbed's Zookeeper.
type Sequencer struct {
	mu      sync.Mutex
	counter []uint64
	alive   []bool
}

// NewSequencer creates a sequencer with n voters, all alive.
func NewSequencer(n int) *Sequencer {
	return &Sequencer{counter: make([]uint64, n), alive: allTrue(n)}
}

func allTrue(n int) []bool {
	b := make([]bool, n)
	for i := range b {
		b[i] = true
	}
	return b
}

// SetAlive marks voter i up or down.
func (q *Sequencer) SetAlive(i int, alive bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.alive[i] = alive
}

// HasQuorum reports whether a majority of voters is alive.
func (q *Sequencer) HasQuorum() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.aliveCountLocked() >= len(q.alive)/2+1
}

func (q *Sequencer) aliveCountLocked() int {
	n := 0
	for _, a := range q.alive {
		if a {
			n++
		}
	}
	return n
}

// Next returns a unique ID agreed by a majority: one more than the highest
// counter among live voters, then recorded on all of them.
func (q *Sequencer) Next() (uint64, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.aliveCountLocked() < len(q.alive)/2+1 {
		return 0, fmt.Errorf("%w: sequencer has %d/%d voters", ErrNoQuorum, q.aliveCountLocked(), len(q.alive))
	}
	max := uint64(0)
	for i, alive := range q.alive {
		if alive && q.counter[i] > max {
			max = q.counter[i]
		}
	}
	next := max + 1
	for i, alive := range q.alive {
		if alive {
			q.counter[i] = next
		}
	}
	return next, nil
}

// EventLog is a replicated append-only log — the testbed's Kafka. Appends
// need a majority; reads serve from any live replica (they all hold the
// quorum-committed prefix).
type EventLog struct {
	mu      sync.Mutex
	entries []string
	alive   []bool
}

// NewEventLog creates a log with n replicas, all alive.
func NewEventLog(n int) *EventLog {
	return &EventLog{alive: allTrue(n)}
}

// SetAlive marks replica i up or down.
func (l *EventLog) SetAlive(i int, alive bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.alive[i] = alive
}

// HasQuorum reports whether a majority of replicas is alive.
func (l *EventLog) HasQuorum() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.aliveCountLocked() >= len(l.alive)/2+1
}

func (l *EventLog) aliveCountLocked() int {
	n := 0
	for _, a := range l.alive {
		if a {
			n++
		}
	}
	return n
}

// Append commits an entry; it fails without a majority.
func (l *EventLog) Append(entry string) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.aliveCountLocked() < len(l.alive)/2+1 {
		return 0, fmt.Errorf("%w: event log has %d/%d replicas", ErrNoQuorum, l.aliveCountLocked(), len(l.alive))
	}
	l.entries = append(l.entries, entry)
	return len(l.entries) - 1, nil
}

// ReadFrom returns entries at and after offset; it fails when no replica is
// alive.
func (l *EventLog) ReadFrom(offset int) ([]string, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.aliveCountLocked() == 0 {
		return nil, fmt.Errorf("%w: event log has no live replicas", ErrNoQuorum)
	}
	if offset < 0 || offset > len(l.entries) {
		return nil, fmt.Errorf("cluster: offset %d out of range [0,%d]", offset, len(l.entries))
	}
	out := make([]string, len(l.entries)-offset)
	copy(out, l.entries[offset:])
	return out, nil
}

// Len returns the committed length.
func (l *EventLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}
