package vclock

import (
	"runtime"
	"sync"
	"time"
)

// Fake is a deterministic virtual clock. Time never flows on its own:
// it jumps, and only to the earliest pending deadline, and only once
// every goroutine declared with Register is parked in one of the
// accounting-aware blocking primitives (Sleep, SleepOr, Ticker.Wait, or
// an explicit Park). Work therefore happens at frozen virtual instants,
// which is what makes scenario timelines exact: a supervisor restart
// configured to take 3 virtual milliseconds takes exactly 3 virtual
// milliseconds, regardless of scheduler load.
//
// Create with NewFake. Safe for concurrent use.
type Fake struct {
	mu         sync.Mutex
	now        time.Time
	registered int
	parked     int
	// ops counts clock interactions (parks, unparks, fires, cancels).
	// The advance path uses it as a quiescence signal: yield to the
	// scheduler, and only move time when no goroutine touched the clock
	// in the meantime — giving just-woken or message-driven goroutines a
	// chance to run at the current instant first.
	ops     uint64
	waiters map[*waiter]struct{}
	// armSeq orders waiters armed at the same deadline: the advance path
	// fires exactly one waiter per step, in (deadline, arm order), so
	// goroutines whose deadlines coincide wake one at a time in a
	// deterministic order instead of racing the scheduler.
	armSeq uint64
	// work counts outstanding deliveries (AddWork/DoneWork): messages or
	// notifications handed to goroutines that have not yet consumed them.
	// The clock never advances while work is outstanding — it closes the
	// race where a consumer is runnable but not yet scheduled, so the
	// park counters alone would call the system quiescent.
	work int
}

// waiter is one armed deadline: a sleeper, a timer, or a ticker (which
// rearms itself period by period).
type waiter struct {
	deadline time.Time
	fire     chan time.Time // buffered(1); sends coalesce
	period   time.Duration  // > 0 for tickers
	parked   bool           // a goroutine is park-counted on this waiter
	seq      uint64         // arm order; ties on deadline fire in this order
}

// NewFake returns a Fake clock reading start. A zero start defaults to a
// fixed, readable epoch so timestamps in reports are stable across runs.
func NewFake(start time.Time) *Fake {
	if start.IsZero() {
		start = time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC)
	}
	return &Fake{now: start, waiters: map[*waiter]struct{}{}}
}

// Now returns the current virtual time.
func (f *Fake) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

// Since returns the virtual time elapsed since t.
func (f *Fake) Since(t time.Time) time.Duration { return f.Now().Sub(t) }

// Sleep blocks until virtual time has advanced by d.
func (f *Fake) Sleep(d time.Duration) { f.SleepOr(d, nil) }

// SleepOr blocks until virtual time has advanced by d or cancel closes,
// reporting true in the former case. The block is park-counted.
func (f *Fake) SleepOr(d time.Duration, cancel <-chan struct{}) bool {
	select {
	case <-cancel:
		return false
	default:
	}
	if d <= 0 {
		return true
	}
	f.mu.Lock()
	w := &waiter{deadline: f.now.Add(d), fire: make(chan time.Time, 1), seq: f.nextSeqLocked()}
	f.waiters[w] = struct{}{}
	f.parkLocked(w)
	quiet := f.quietLocked()
	f.mu.Unlock()
	if quiet {
		f.tryAdvance()
	}
	select {
	case <-w.fire:
		return true
	case <-cancel:
		return f.abandon(w)
	}
}

// abandon detaches a cancelled waiter, reporting true if the deadline
// fired concurrently with the cancellation (the sleep did complete).
func (f *Fake) abandon(w *waiter) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	select {
	case <-w.fire:
		return true
	default:
	}
	delete(f.waiters, w)
	f.unparkLocked(w)
	return false
}

// After returns a channel delivering the virtual time once d has
// elapsed. Not park-counted: registered goroutines must not block on it
// directly (use Sleep/SleepOr).
func (f *Fake) After(d time.Duration) <-chan time.Time {
	return f.newTimer(d).fire
}

// NewTimer returns a one-shot virtual timer. Not park-counted.
func (f *Fake) NewTimer(d time.Duration) Timer {
	return &fakeTimer{f: f, w: f.newTimer(d)}
}

func (f *Fake) newTimer(d time.Duration) *waiter {
	f.mu.Lock()
	defer f.mu.Unlock()
	w := &waiter{deadline: f.now.Add(d), fire: make(chan time.Time, 1), seq: f.nextSeqLocked()}
	if d <= 0 {
		w.fire <- f.now
		return w
	}
	f.waiters[w] = struct{}{}
	return w
}

// NewTicker returns a virtual ticker firing every d; its Wait method is
// park-counted. Panics if d is not positive.
func (f *Fake) NewTicker(d time.Duration) Ticker {
	if d <= 0 {
		panic("vclock: non-positive ticker period")
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	w := &waiter{deadline: f.now.Add(d), fire: make(chan time.Time, 1), period: d, seq: f.nextSeqLocked()}
	f.waiters[w] = struct{}{}
	return &fakeTicker{f: f, w: w}
}

// Register declares a clock-driven goroutine (see Clock.Register).
func (f *Fake) Register() {
	f.mu.Lock()
	f.registered++
	f.ops++
	f.mu.Unlock()
}

// Unregister retires a registered goroutine. If everyone left is parked,
// the departure itself can make the system quiescent, so it may trigger
// an advance.
func (f *Fake) Unregister() {
	f.mu.Lock()
	f.registered--
	f.ops++
	quiet := f.quietLocked()
	f.mu.Unlock()
	if quiet {
		f.tryAdvance()
	}
}

// AddWork declares n outstanding deliveries that must be consumed (each
// retired by one DoneWork) before the clock may advance.
func (f *Fake) AddWork(n int) {
	if n <= 0 {
		return
	}
	f.mu.Lock()
	f.work += n
	f.ops++
	f.mu.Unlock()
}

// DoneWork retires one outstanding delivery. Retiring the last one can
// complete quiescence, so it may trigger an advance.
func (f *Fake) DoneWork() {
	f.mu.Lock()
	if f.work > 0 {
		f.work--
	}
	f.ops++
	quiet := f.quietLocked()
	f.mu.Unlock()
	if quiet {
		f.tryAdvance()
	}
}

// Work returns the number of outstanding deliveries.
func (f *Fake) Work() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.work
}

// Park marks the calling registered goroutine as blocked outside the
// clock. The returned function unparks it.
func (f *Fake) Park() func() {
	f.mu.Lock()
	f.parked++
	f.ops++
	quiet := f.quietLocked()
	f.mu.Unlock()
	if quiet {
		f.tryAdvance()
	}
	return func() {
		f.mu.Lock()
		f.parked--
		f.ops++
		f.mu.Unlock()
	}
}

// Advance moves virtual time forward by d, firing every deadline passed
// on the way in order (tickers fire once per elapsed period, coalescing
// into their buffered channel). Meant for unit tests driving the clock
// by hand; auto-advance runs make no Advance calls.
func (f *Fake) Advance(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	target := f.now.Add(d)
	for {
		next, ok := f.nextDeadlineLocked()
		if !ok || next.After(target) {
			break
		}
		f.now = next
		for f.fireNextDueLocked() {
		}
	}
	f.now = target
}

// Registered returns the number of currently registered goroutines.
func (f *Fake) Registered() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.registered
}

// Parked returns the number of currently park-counted goroutines.
func (f *Fake) Parked() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.parked
}

// Pending returns the number of armed deadlines (sleepers, timers and
// tickers).
func (f *Fake) Pending() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.waiters)
}

// ---- internals (callers hold f.mu unless noted) ----

func (f *Fake) parkLocked(w *waiter) {
	w.parked = true
	f.parked++
	f.ops++
}

func (f *Fake) unparkLocked(w *waiter) {
	if w.parked {
		w.parked = false
		f.parked--
	}
	f.ops++
}

// quietLocked reports whether every registered goroutine is parked and no
// delivery is still in flight.
func (f *Fake) quietLocked() bool {
	return f.registered > 0 && f.parked >= f.registered && f.work == 0
}

// tryAdvance moves time to the next deadline if the system is (and
// stays, across scheduler yields) fully parked. The yield rounds let
// runnable-but-unscheduled goroutines — a consumer that just received a
// message, a sleeper woken by a closed cancel channel — touch the clock
// first, which bumps ops and aborts the attempt; the goroutine that
// re-parks last retries. Called without f.mu held.
func (f *Fake) tryAdvance() {
	for attempt := 0; attempt < 64; attempt++ {
		f.mu.Lock()
		before := f.ops
		quiet := f.quietLocked()
		f.mu.Unlock()
		if !quiet {
			return
		}
		for i := 0; i < 8; i++ {
			runtime.Gosched()
		}
		f.mu.Lock()
		if f.ops == before && f.quietLocked() {
			f.advanceLocked()
			f.mu.Unlock()
			return
		}
		f.mu.Unlock()
	}
}

// advanceLocked hops virtual time deadline by deadline — firing exactly
// one waiter per hop — until a fire actually wakes a parked goroutine
// (which then runs and re-triggers the next advance when it re-parks), or
// until no parked goroutine is waiting on any deadline. One waiter at a
// time is what makes coincident deadlines deterministic: when several
// sleepers share an instant, only the earliest-armed one wakes; the rest
// stay parked until it re-parks, so their relative order is arm order,
// never scheduler order. Hopping through deadlines nobody currently
// observes — a ticker whose owner is parked elsewhere with a tick already
// buffered, so the fresh tick coalesces and wakes no one — is essential:
// stopping after one such fire would strand the clock with everyone
// parked and no goroutine left to trigger the next advance (e.g. a prober
// whose CP probe outlasts its sampling period). Callers hold f.mu.
func (f *Fake) advanceLocked() {
	for {
		// Only deadlines with a park-counted owner can wake anyone; with
		// none left, everyone parked is waiting on something other than
		// time (an unregistered goroutine, or test code about to act) and
		// moving the clock would spin it forward for nothing.
		anyParkedWaiter := false
		for w := range f.waiters {
			if w.parked {
				anyParkedWaiter = true
				break
			}
		}
		if !anyParkedWaiter {
			return
		}
		next, ok := f.nextDeadlineLocked()
		if !ok {
			return
		}
		if next.After(f.now) {
			f.now = next
		}
		parkedBefore := f.parked
		if !f.fireNextDueLocked() {
			return
		}
		if f.parked < parkedBefore {
			return
		}
	}
}

// nextDeadlineLocked returns the earliest armed deadline.
func (f *Fake) nextDeadlineLocked() (time.Time, bool) {
	var min time.Time
	found := false
	for w := range f.waiters {
		if !found || w.deadline.Before(min) {
			min = w.deadline
			found = true
		}
	}
	return min, found
}

// nextSeqLocked returns the next arm-order sequence number.
func (f *Fake) nextSeqLocked() uint64 {
	f.armSeq++
	return f.armSeq
}

// fireNextDueLocked delivers the single due waiter with the earliest
// (deadline, arm order), reporting whether one fired. One-shot waiters
// are removed; tickers rearm one period after the deadline that fired,
// keeping their original arm order (sends into the buffered channel
// coalesce, so a slow consumer sees one tick, not a backlog).
func (f *Fake) fireNextDueLocked() bool {
	var due *waiter
	for w := range f.waiters {
		if w.deadline.After(f.now) {
			continue
		}
		if due == nil || w.deadline.Before(due.deadline) ||
			(w.deadline.Equal(due.deadline) && w.seq < due.seq) {
			due = w
		}
	}
	if due == nil {
		return false
	}
	select {
	case due.fire <- f.now:
	default:
	}
	if due.period > 0 {
		due.deadline = due.deadline.Add(due.period)
	} else {
		delete(f.waiters, due)
	}
	f.unparkLocked(due)
	return true
}

type fakeTimer struct {
	f *Fake
	w *waiter
}

func (t *fakeTimer) C() <-chan time.Time { return t.w.fire }

func (t *fakeTimer) Stop() bool {
	t.f.mu.Lock()
	defer t.f.mu.Unlock()
	if _, ok := t.f.waiters[t.w]; !ok {
		return false
	}
	delete(t.f.waiters, t.w)
	return true
}

type fakeTicker struct {
	f       *Fake
	w       *waiter
	stopped bool
}

// Wait blocks until the next tick (park-counted) or cancellation. A tick
// that fired while the consumer was busy is consumed immediately.
func (t *fakeTicker) Wait(cancel <-chan struct{}) bool {
	select {
	case <-cancel:
		return false
	default:
	}
	t.f.mu.Lock()
	if t.stopped {
		t.f.mu.Unlock()
		return false
	}
	select {
	case <-t.w.fire:
		t.f.mu.Unlock()
		return true
	default:
	}
	t.f.parkLocked(t.w)
	quiet := t.f.quietLocked()
	t.f.mu.Unlock()
	if quiet {
		t.f.tryAdvance()
	}
	select {
	case <-t.w.fire:
		return true
	case <-cancel:
		t.f.mu.Lock()
		defer t.f.mu.Unlock()
		select {
		case <-t.w.fire:
			return true
		default:
		}
		t.f.unparkLocked(t.w)
		return false
	}
}

func (t *fakeTicker) Stop() {
	t.f.mu.Lock()
	defer t.f.mu.Unlock()
	if t.stopped {
		return
	}
	t.stopped = true
	delete(t.f.waiters, t.w)
	t.f.unparkLocked(t.w)
}
