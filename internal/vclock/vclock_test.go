package vclock

import (
	"sync"
	"testing"
	"time"
)

// epoch is the fake clock's default start.
var epoch = time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC)

func TestRealClockBasics(t *testing.T) {
	var clk Real
	t0 := clk.Now()
	clk.Sleep(time.Millisecond)
	if clk.Since(t0) <= 0 {
		t.Fatalf("real clock did not advance")
	}
	if !clk.SleepOr(time.Microsecond, nil) {
		t.Fatalf("SleepOr(nil cancel) = false")
	}
	cancel := make(chan struct{})
	close(cancel)
	if clk.SleepOr(time.Hour, cancel) {
		t.Fatalf("SleepOr with closed cancel = true")
	}
	tk := clk.NewTicker(time.Millisecond)
	defer tk.Stop()
	if !tk.Wait(nil) {
		t.Fatalf("real ticker Wait = false")
	}
	if tk.Wait(cancel) {
		t.Fatalf("real ticker Wait with closed cancel = true")
	}
	clk.Register() // no-ops
	clk.Unregister()
	clk.Park()()
}

// TestFakeAutoAdvance: two registered sleepers with different deadlines
// wake in deadline order, and virtual time lands exactly on each
// deadline — no wall time is spent.
func TestFakeAutoAdvance(t *testing.T) {
	f := NewFake(time.Time{})
	type wake struct {
		who string
		at  time.Time
	}
	wakes := make(chan wake, 4)
	var wg sync.WaitGroup
	spawn := func(who string, d time.Duration) {
		f.Register()
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer f.Unregister()
			f.Sleep(d)
			wakes <- wake{who, f.Now()}
		}()
	}
	spawn("slow", 10*time.Hour)
	spawn("fast", 3*time.Second)
	wg.Wait()
	first, second := <-wakes, <-wakes
	if first.who != "fast" || second.who != "slow" {
		t.Fatalf("wake order = %s, %s; want fast, slow", first.who, second.who)
	}
	if want := epoch.Add(3 * time.Second); !first.at.Equal(want) {
		t.Fatalf("fast woke at %v, want %v", first.at, want)
	}
	if want := epoch.Add(10 * time.Hour); !second.at.Equal(want) {
		t.Fatalf("slow woke at %v, want %v", second.at, want)
	}
	if got := f.Now(); !got.Equal(epoch.Add(10 * time.Hour)) {
		t.Fatalf("final Now = %v", got)
	}
}

// TestFakeTickerExactCadence: a registered ticker loop observes exactly
// period-spaced virtual instants.
func TestFakeTickerExactCadence(t *testing.T) {
	f := NewFake(time.Time{})
	const period = 7 * time.Millisecond
	var at []time.Time
	f.Register()
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer f.Unregister()
		tk := f.NewTicker(period)
		defer tk.Stop()
		for i := 0; i < 5; i++ {
			if !tk.Wait(nil) {
				t.Errorf("tick %d: Wait = false", i)
				return
			}
			at = append(at, f.Now())
		}
	}()
	<-done
	if len(at) != 5 {
		t.Fatalf("got %d ticks", len(at))
	}
	for i, ts := range at {
		want := epoch.Add(time.Duration(i+1) * period)
		if !ts.Equal(want) {
			t.Fatalf("tick %d at %v, want %v", i, ts, want)
		}
	}
}

// TestFakeTickerCoalescing: advancing across many periods while nobody
// waits leaves exactly one pending tick.
func TestFakeTickerCoalescing(t *testing.T) {
	f := NewFake(time.Time{})
	tk := f.NewTicker(time.Second)
	defer tk.Stop()
	f.Advance(10 * time.Second) // 10 periods elapse, sends coalesce
	cancel := make(chan struct{})
	close(cancel)
	if !tk.Wait(nil) {
		t.Fatalf("expected a coalesced pending tick")
	}
	if tk.Wait(cancel) {
		t.Fatalf("second Wait should find no pending tick")
	}
	// The ticker rearmed relative to fired deadlines, not consumer speed:
	// next deadline is 11s after epoch.
	f.Advance(time.Second)
	if !tk.Wait(nil) {
		t.Fatalf("expected tick after one more period")
	}
}

// TestFakeWaiterAccounting tracks Registered/Parked/Pending through a
// sleeper's lifecycle.
func TestFakeWaiterAccounting(t *testing.T) {
	f := NewFake(time.Time{})
	if f.Registered() != 0 || f.Parked() != 0 || f.Pending() != 0 {
		t.Fatalf("fresh clock not empty: %d/%d/%d", f.Registered(), f.Parked(), f.Pending())
	}
	f.Register() // the test goroutine itself
	f.Register() // the sleeper below
	if f.Registered() != 2 {
		t.Fatalf("Registered = %d, want 2", f.Registered())
	}
	started := make(chan struct{})
	released := make(chan struct{})
	go func() {
		defer f.Unregister()
		close(started)
		f.Sleep(time.Minute) // parks; auto-advance waits for the test goroutine
		close(released)
	}()
	<-started
	waitFor(t, func() bool { return f.Parked() == 1 && f.Pending() == 1 })
	select {
	case <-released:
		t.Fatalf("sleeper released while a registered goroutine was still running")
	default:
	}
	// The test goroutine parks too — now the system is quiescent and the
	// clock advances, but only to the earliest deadline.
	f.Sleep(time.Second)
	if got := f.Since(epoch); got != time.Second {
		t.Fatalf("advanced %v past the earliest deadline, want 1s", got)
	}
	select {
	case <-released:
		t.Fatalf("sleeper released at 1s, before its 1m deadline")
	default:
	}
	// The test goroutine leaves; the sleeper alone is quiescent and the
	// clock jumps to its deadline.
	f.Unregister()
	<-released
	if got := f.Since(epoch); got != time.Minute {
		t.Fatalf("advanced %v, want 1m", got)
	}
	waitFor(t, func() bool {
		return f.Registered() == 0 && f.Parked() == 0 && f.Pending() == 0
	})
}

// TestFakeSleepOrCancel: a closed cancel channel releases the sleeper
// without advancing time, and the waiter is deregistered.
func TestFakeSleepOrCancel(t *testing.T) {
	f := NewFake(time.Time{})
	cancel := make(chan struct{})
	done := make(chan bool, 1)
	go func() { done <- f.SleepOr(time.Hour, cancel) }()
	waitFor(t, func() bool { return f.Pending() == 1 })
	close(cancel)
	if <-done {
		t.Fatalf("cancelled SleepOr returned true")
	}
	if f.Pending() != 0 || f.Parked() != 0 {
		t.Fatalf("cancelled waiter leaked: pending=%d parked=%d", f.Pending(), f.Parked())
	}
	if !f.Now().Equal(epoch) {
		t.Fatalf("time advanced on cancellation: %v", f.Now())
	}
	if f.SleepOr(time.Hour, cancel) {
		t.Fatalf("SleepOr with already-closed cancel returned true")
	}
}

// TestFakeTimerAndAfter: manual Advance drives one-shot deadlines; Stop
// disarms a pending timer.
func TestFakeTimerAndAfter(t *testing.T) {
	f := NewFake(time.Time{})
	ch := f.After(5 * time.Second)
	tm := f.NewTimer(8 * time.Second)
	stopped := f.NewTimer(time.Second)
	if !stopped.Stop() {
		t.Fatalf("Stop on pending timer = false")
	}
	if stopped.Stop() {
		t.Fatalf("second Stop = true")
	}
	f.Advance(6 * time.Second)
	select {
	case at := <-ch:
		if want := epoch.Add(5 * time.Second); !at.Equal(want) {
			t.Fatalf("After fired at %v, want %v", at, want)
		}
	default:
		t.Fatalf("After did not fire")
	}
	select {
	case <-tm.C():
		t.Fatalf("timer fired early")
	default:
	}
	f.Advance(2 * time.Second)
	select {
	case at := <-tm.C():
		if want := epoch.Add(8 * time.Second); !at.Equal(want) {
			t.Fatalf("timer fired at %v, want %v", at, want)
		}
	default:
		t.Fatalf("timer did not fire")
	}
	if tm.Stop() {
		t.Fatalf("Stop after fire = true")
	}
}

// TestFakeParkUnpark: a registered goroutine blocked on a message
// channel under Park does not stall the clock, and messages drain before
// time moves again.
func TestFakeParkUnpark(t *testing.T) {
	f := NewFake(time.Time{})
	msgs := make(chan int, 8)
	var got []int
	var mu sync.Mutex
	stop := make(chan struct{})
	done := make(chan struct{})
	f.Register()
	go func() {
		defer close(done)
		defer f.Unregister()
		for {
			unpark := f.Park()
			select {
			case <-stop:
				unpark()
				return
			case m := <-msgs:
				unpark()
				mu.Lock()
				got = append(got, m)
				mu.Unlock()
			}
		}
	}()
	f.Register()
	msgs <- 1
	msgs <- 2
	f.Sleep(time.Minute) // parks the driver; consumer drains, then time advances
	if got := f.Since(epoch); got != time.Minute {
		t.Fatalf("advanced %v, want 1m", got)
	}
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) == 2
	})
	close(stop)
	<-done
	f.Unregister()
}

// TestFakeConcurrentLoad shakes the accounting under the race detector:
// many registered sleepers and ticker loops running simultaneously.
func TestFakeConcurrentLoad(t *testing.T) {
	f := NewFake(time.Time{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		d := time.Duration(i+1) * 11 * time.Millisecond
		f.Register()
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer f.Unregister()
			for j := 0; j < 50; j++ {
				f.Sleep(d)
			}
		}()
	}
	for i := 0; i < 4; i++ {
		period := time.Duration(i+1) * 3 * time.Millisecond
		f.Register()
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer f.Unregister()
			tk := f.NewTicker(period)
			defer tk.Stop()
			for j := 0; j < 100; j++ {
				if !tk.Wait(nil) {
					return
				}
			}
		}()
	}
	wg.Wait()
	if f.Parked() != 0 {
		t.Fatalf("leftover parked count %d", f.Parked())
	}
	if f.Since(epoch) <= 0 {
		t.Fatalf("virtual time did not advance")
	}
}

// TestFakeWorkTokens verifies that outstanding work (a delivered-but-not-
// yet-observed message) blocks auto-advance even while every registered
// goroutine is parked, and that retiring the last token releases the clock.
func TestFakeWorkTokens(t *testing.T) {
	f := NewFake(time.Time{})
	msgs := make(chan int, 8)
	observed := make(chan time.Time, 8)
	stop := make(chan struct{})
	done := make(chan struct{})
	f.Register()
	go func() {
		defer close(done)
		defer f.Unregister()
		for {
			unpark := f.Park()
			select {
			case <-stop:
				unpark()
				return
			case <-msgs:
				unpark()
				// Record the virtual instant at which the delivery was
				// observed, then ack its token.
				observed <- f.Now()
				f.DoneWork()
			}
		}
	}()

	// Mint a token per message like a clocked bus publish would.
	f.AddWork(1)
	msgs <- 1
	if f.Work() != 1 {
		t.Fatalf("work = %d, want 1", f.Work())
	}

	f.Register()
	f.Sleep(time.Minute) // may only elapse after the consumer acks
	at := <-observed
	if got := at.Sub(epoch); got != 0 {
		t.Fatalf("message observed at virtual %v, want 0 (before any advance)", got)
	}
	if got := f.Since(epoch); got != time.Minute {
		t.Fatalf("advanced %v, want 1m", got)
	}
	if f.Work() != 0 {
		t.Fatalf("work = %d after ack, want 0", f.Work())
	}

	// A second round at the new virtual instant: same invariant holds.
	f.AddWork(1)
	msgs <- 2
	f.Sleep(time.Minute)
	at = <-observed
	if got := at.Sub(epoch); got != time.Minute {
		t.Fatalf("second message observed at virtual %v, want 1m", got)
	}
	close(stop)
	<-done
	f.Unregister()

	// AddWork ignores non-positive counts; DoneWork never goes negative.
	f.AddWork(0)
	f.AddWork(-3)
	if f.Work() != 0 {
		t.Fatalf("work = %d after no-op adds, want 0", f.Work())
	}
	f.DoneWork()
	if f.Work() != 0 {
		t.Fatalf("work = %d after spurious DoneWork, want 0", f.Work())
	}
}

// waitFor polls (in wall time) for a condition that becomes true after
// scheduler handoff, failing the test after a second.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("condition not reached")
		}
		time.Sleep(100 * time.Microsecond)
	}
}
