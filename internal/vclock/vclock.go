// Package vclock provides an injectable clock abstraction for the live
// testbed and the chaos harness: a pass-through Real clock for ordinary
// wall-time runs, and a deterministic Fake clock that auto-advances
// virtual time to the next pending deadline once every registered
// goroutine is parked — so sleep/ticker-driven code runs unmodified but
// thousands of times faster, and long-horizon soak experiments (simulated
// months of MTBF/MTTR cycles) complete in seconds.
//
// The auto-advance contract: production goroutines that block on time
// must (a) be declared with Register/Unregister and (b) block only
// through the accounting-aware primitives — Sleep, SleepOr, Ticker.Wait,
// or an explicit Park around a non-clock block (e.g. a message-channel
// receive). After and NewTimer exist for interface fidelity but their
// channels are not park-counted: a registered goroutine selecting on them
// directly would stall the fake clock.
//
// Note the Monte Carlo simulator (internal/mc) does not use this package:
// it keeps its own discrete-event clock (a pending-event heap advanced
// directly to the next event time). vclock brings the same
// event-compression idea to the *live* goroutine cluster, where the
// "events" are real goroutines waking up.
package vclock

import "time"

// Clock abstracts the time operations the testbed performs. Real forwards
// to package time; Fake virtualizes them.
type Clock interface {
	// Now returns the current (wall or virtual) time.
	Now() time.Time
	// Since returns Now().Sub(t).
	Since(t time.Time) time.Duration
	// Sleep blocks the calling goroutine for d.
	Sleep(d time.Duration)
	// SleepOr blocks for d or until cancel is closed, whichever comes
	// first. It reports true when the full duration elapsed and false on
	// cancellation. A nil cancel is never ready, making SleepOr(d, nil)
	// equivalent to Sleep(d).
	SleepOr(d time.Duration, cancel <-chan struct{}) bool
	// After returns a channel that delivers the clock's time once d has
	// elapsed. NOT park-counted under Fake — see the package comment.
	After(d time.Duration) <-chan time.Time
	// NewTimer returns a one-shot timer. NOT park-counted under Fake.
	NewTimer(d time.Duration) Timer
	// NewTicker returns a periodic ticker whose Wait method is
	// park-counted under Fake. The period must be positive.
	NewTicker(d time.Duration) Ticker
	// Register declares a clock-driven goroutine to the fake clock's
	// waiter accounting. Call it in the spawning goroutine, before the
	// `go` statement, so the count is correct the moment the spawn
	// returns; the spawned goroutine calls Unregister (usually deferred)
	// on exit. No-ops on Real.
	Register()
	// Unregister retires a goroutine declared with Register.
	Unregister()
	// Park marks the calling registered goroutine as blocked outside the
	// clock (e.g. on a message-channel receive) so the fake clock may
	// advance past it. Call the returned function as soon as the
	// goroutine is runnable again. No-ops on Real.
	Park() (unpark func())
	// AddWork declares n outstanding work items — deliveries made to a
	// goroutine that has not yet observed them (a published message, a
	// condition-change notification). The fake clock refuses to advance
	// while work is outstanding: a consumer that is runnable but not yet
	// scheduled still counts as park-blocked, and only the work token
	// makes its pending wakeup visible to the clock. Each item is retired
	// with one DoneWork call by the goroutine that consumed it. No-ops on
	// Real.
	AddWork(n int)
	// DoneWork retires one work item declared with AddWork.
	DoneWork()
}

// Timer is a one-shot timer.
type Timer interface {
	// C returns the delivery channel.
	C() <-chan time.Time
	// Stop cancels the timer, reporting whether it was still pending.
	Stop() bool
}

// Ticker delivers ticks at a fixed period. Missed ticks coalesce: a
// consumer that falls behind sees one pending tick, not a backlog.
type Ticker interface {
	// Wait blocks until the next tick or until cancel is closed,
	// reporting true on a tick and false on cancellation or after Stop.
	Wait(cancel <-chan struct{}) bool
	// Stop releases the ticker.
	Stop()
}

// Real is the pass-through wall-clock implementation. The zero value is
// ready to use.
type Real struct{}

// Now returns time.Now().
func (Real) Now() time.Time { return time.Now() }

// Since returns time.Since(t).
func (Real) Since(t time.Time) time.Duration { return time.Since(t) }

// Sleep calls time.Sleep.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

// SleepOr sleeps d or returns early when cancel closes.
func (Real) SleepOr(d time.Duration, cancel <-chan struct{}) bool {
	if d <= 0 {
		select {
		case <-cancel:
			return false
		default:
			return true
		}
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-cancel:
		return false
	}
}

// After calls time.After.
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// NewTimer wraps time.NewTimer.
func (Real) NewTimer(d time.Duration) Timer { return realTimer{time.NewTimer(d)} }

// NewTicker wraps time.NewTicker.
func (Real) NewTicker(d time.Duration) Ticker { return &realTicker{t: time.NewTicker(d)} }

// Register is a no-op on the real clock.
func (Real) Register() {}

// Unregister is a no-op on the real clock.
func (Real) Unregister() {}

// Park is a no-op on the real clock.
func (Real) Park() func() { return func() {} }

// AddWork is a no-op on the real clock.
func (Real) AddWork(int) {}

// DoneWork is a no-op on the real clock.
func (Real) DoneWork() {}

type realTimer struct{ t *time.Timer }

func (rt realTimer) C() <-chan time.Time { return rt.t.C }
func (rt realTimer) Stop() bool          { return rt.t.Stop() }

type realTicker struct{ t *time.Ticker }

func (rt *realTicker) Wait(cancel <-chan struct{}) bool {
	select {
	case <-rt.t.C:
		return true
	case <-cancel:
		return false
	}
}

func (rt *realTicker) Stop() { rt.t.Stop() }
