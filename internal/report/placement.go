package report

import (
	"fmt"

	"sdnavail/internal/relmath"
)

// PlacementRow is one ranked controller placement, pre-digested by the
// caller so the report package stays free of simulator dependencies.
type PlacementRow struct {
	// Label names the placement ("R1H1+R2H1+R3H1").
	Label string
	// Racks is the number of distinct racks the placement touches.
	Racks int
	// QuorumSharesRack flags layouts where one rack carries a quorum.
	QuorumSharesRack bool
	// AnalyticCP is the closed-form control-plane availability.
	AnalyticCP float64
	// MCCP and MCHalfWidth are the Monte Carlo cross-check's mean and CI
	// half-width.
	MCCP, MCHalfWidth float64
	// Replications is what the adaptive engine spent on the cross-check;
	// Converged whether it met the CI target.
	Replications int
	Converged    bool
}

// PlacementTable renders the paper-style placement ranking: analytic
// downtime minutes per year next to the Monte Carlo cross-check, with
// the quorum-shares-rack hazard flagged. Rows are rendered in the order
// given (best first, by convention).
func PlacementTable(title string, rows []PlacementRow) Table {
	t := Table{
		Title: title,
		Columns: []string{"rank", "placement", "racks", "quorum/rack",
			"analytic CP", "min/yr", "MC CP (CI)", "reps"},
	}
	for i, r := range rows {
		hazard := "no"
		if r.QuorumSharesRack {
			hazard = "YES"
		}
		reps := fmt.Sprintf("%d", r.Replications)
		if !r.Converged {
			reps += "*"
		}
		t.AddRow(i+1, r.Label, r.Racks, hazard,
			fmt.Sprintf("%.8f", r.AnalyticCP),
			fmt.Sprintf("%.2f", relmath.DowntimeMinutesPerYear(r.AnalyticCP)),
			fmt.Sprintf("%.8f ± %.8f", r.MCCP, r.MCHalfWidth),
			reps)
	}
	return t
}
