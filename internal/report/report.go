// Package report renders experiment output as text tables, CSV, and
// dependency-free ASCII charts, for the command-line tools and
// EXPERIMENTS.md.
package report

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named curve of a figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Figure is a reproduced paper figure: one or more series over a shared
// axis pair.
type Figure struct {
	ID     string // e.g. "fig3"
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// CSV renders the figure as a wide CSV: x, then one column per series.
// Series are aligned by index; the longest series defines the row count.
func (f Figure) CSV() string {
	var sb strings.Builder
	sb.WriteString("x")
	rows := 0
	for _, s := range f.Series {
		fmt.Fprintf(&sb, ",%s", s.Name)
		if len(s.X) > rows {
			rows = len(s.X)
		}
	}
	sb.WriteByte('\n')
	for i := 0; i < rows; i++ {
		for si, s := range f.Series {
			if si == 0 && i < len(s.X) {
				fmt.Fprintf(&sb, "%g", s.X[i])
			}
			if i < len(s.Y) {
				fmt.Fprintf(&sb, ",%.10g", s.Y[i])
			} else {
				sb.WriteByte(',')
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// ASCII renders the figure as a fixed-size character chart with one mark
// per series ('a', 'b', 'c', ...). It is intentionally simple: enough to
// eyeball curve shapes and crossovers in a terminal.
func (f Figure) ASCII(width, height int) string {
	if width < 16 {
		width = 16
	}
	if height < 6 {
		height = 6
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range f.Series {
		for i := range s.X {
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, s.Y[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	if math.IsInf(minX, 1) {
		return f.Title + "\n(no data)\n"
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range f.Series {
		mark := byte('a' + si%26)
		for i := range s.X {
			col := int(math.Round((s.X[i] - minX) / (maxX - minX) * float64(width-1)))
			row := int(math.Round((s.Y[i] - minY) / (maxY - minY) * float64(height-1)))
			r := height - 1 - row
			grid[r][col] = mark
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — %s\n", f.ID, f.Title)
	fmt.Fprintf(&sb, "y: %s in [%.8g, %.8g]\n", f.YLabel, minY, maxY)
	for _, row := range grid {
		sb.WriteString("  |")
		sb.Write(row)
		sb.WriteByte('\n')
	}
	sb.WriteString("  +" + strings.Repeat("-", width) + "\n")
	fmt.Fprintf(&sb, "   x: %s in [%g, %g]\n", f.XLabel, minX, maxX)
	for si, s := range f.Series {
		fmt.Fprintf(&sb, "   %c = %s\n", 'a'+si%26, s.Name)
	}
	return sb.String()
}

// Table is a rendered result table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(values ...any) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.8g", x)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Text renders the table with aligned columns.
func (t Table) Text() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}

// CSV renders the table as CSV with minimal quoting.
func (t Table) CSV() string {
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				cell = "\"" + strings.ReplaceAll(cell, "\"", "\"\"") + "\""
			}
			sb.WriteString(cell)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}

// Markdown renders the table as a GitHub-flavored markdown table, for
// pasting experiment output into documentation.
func (t Table) Markdown() string {
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "**%s**\n\n", t.Title)
	}
	writeRow := func(cells []string) {
		sb.WriteString("|")
		for _, cell := range cells {
			sb.WriteString(" ")
			sb.WriteString(strings.ReplaceAll(cell, "|", "\\|"))
			sb.WriteString(" |")
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Columns)
	sb.WriteString("|")
	for range t.Columns {
		sb.WriteString("---|")
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}
