package report

import (
	"fmt"

	"sdnavail/internal/relmath"
	"sdnavail/internal/stats"
	"sdnavail/internal/telemetry"
)

// RecoveryTable renders the recovery-time distributions collected by the
// telemetry tracker — election latencies, replica catch-up windows and
// gray-leader detection delays — next to availability, giving reports the
// response-time dimension a pure up/down model misses. One row per kind,
// order statistics in seconds.
func RecoveryTable(r *telemetry.Recovery) Table {
	t := Table{
		Title:   "Recovery times (s)",
		Columns: []string{"Kind", "N", "Mean", "P50", "P90", "Max"},
	}
	for _, kind := range r.Kinds() {
		s := r.Summary(kind)
		t.AddRow(kind, s.N,
			fmt.Sprintf("%.4f", s.Mean), fmt.Sprintf("%.4f", s.P50),
			fmt.Sprintf("%.4f", s.P90), fmt.Sprintf("%.4f", s.Max))
	}
	return t
}

// ElectionTable renders the RAFT leadership dynamics of a Monte Carlo
// estimate next to its availability figures: how often leadership
// changed, how long elections took, and the unavailability contributed by
// leaderless windows and by undetected gray leaders serving wrong reads —
// the modes invisible to the binary up/down availability rows.
func ElectionTable(elections, grayCycles int, meanElectionHours float64,
	electionUnavail, wrongReadUnavail stats.Interval) Table {
	t := Table{
		Title:   "RAFT leadership dynamics",
		Columns: []string{"Metric", "Value", "min/year equiv"},
	}
	t.AddRow("leader elections", elections, "")
	t.AddRow("mean election (h)", fmt.Sprintf("%.5f", meanElectionHours), "")
	t.AddRow("gray-leader cycles", grayCycles, "")
	t.AddRow("election unavailability",
		fmt.Sprintf("%.8f ± %.8f", electionUnavail.Mean, electionUnavail.HalfWide),
		fmt.Sprintf("%.2f", relmath.DowntimeMinutesPerYear(1-electionUnavail.Mean)))
	t.AddRow("wrong-read unavailability",
		fmt.Sprintf("%.8f ± %.8f", wrongReadUnavail.Mean, wrongReadUnavail.HalfWide),
		fmt.Sprintf("%.2f", relmath.DowntimeMinutesPerYear(1-wrongReadUnavail.Mean)))
	return t
}
