package report

import (
	"fmt"

	"sdnavail/internal/telemetry"
)

// Renderers for the telemetry downtime-attribution ledger: per-mode
// downtime tables and share figures in the paper's Section IV style.

// AttributionTable renders one plane's per-failure-mode downtime.
func AttributionTable(a telemetry.Attribution) Table {
	t := Table{
		Title: fmt.Sprintf("Downtime attribution — %s (%.6g h down over %d interval(s))",
			a.Plane, a.DowntimeHours, a.Intervals),
		Columns: []string{"Failure mode", "Downtime (h)", "Share", "Intervals"},
	}
	for _, m := range a.Modes {
		t.AddRow(m.Mode, m.Hours, fmt.Sprintf("%.2f%%", m.Share*100), m.Intervals)
	}
	return t
}

// AttributionFigure renders the per-mode downtime shares of one plane as
// a figure: one point per mode, x = mode rank (by share), y = share.
func AttributionFigure(a telemetry.Attribution) Figure {
	f := Figure{
		ID:     "attribution-" + a.Plane,
		Title:  fmt.Sprintf("Per-failure-mode downtime share — %s", a.Plane),
		XLabel: "mode rank",
		YLabel: "share of downtime",
	}
	s := Series{Name: a.Plane}
	for i, m := range a.Modes {
		s.X = append(s.X, float64(i+1))
		s.Y = append(s.Y, m.Share)
	}
	f.Series = append(f.Series, s)
	return f
}

// AttributionComparisonTable lines the same plane's per-mode shares up
// across independent estimators (e.g. the live soak ledger, the MC
// mirror, the analytic contributions), one column per named source. The
// mode universe is the union of all sources'; shares are rendered as
// percentages.
func AttributionComparisonTable(title string, sources []string, shares []map[string]float64) Table {
	t := Table{Title: title, Columns: append([]string{"Failure mode"}, sources...)}
	seen := map[string]bool{}
	var modes []string
	for _, m := range shares {
		for mode := range m {
			if !seen[mode] {
				seen[mode] = true
				modes = append(modes, mode)
			}
		}
	}
	// Order by the first source's share, largest first, then by name.
	sortModes := func(a, b string) bool {
		if len(shares) > 0 && shares[0][a] != shares[0][b] {
			return shares[0][a] > shares[0][b]
		}
		return a < b
	}
	for i := 1; i < len(modes); i++ {
		for j := i; j > 0 && sortModes(modes[j], modes[j-1]); j-- {
			modes[j], modes[j-1] = modes[j-1], modes[j]
		}
	}
	for _, mode := range modes {
		row := make([]any, 0, len(shares)+1)
		row = append(row, mode)
		for _, m := range shares {
			row = append(row, fmt.Sprintf("%.2f%%", m[mode]*100))
		}
		t.AddRow(row...)
	}
	return t
}
