package report

import (
	"strings"
	"testing"
)

func sampleFigure() Figure {
	return Figure{
		ID: "fig0", Title: "sample", XLabel: "x", YLabel: "y",
		Series: []Series{
			{Name: "up", X: []float64{0, 1, 2}, Y: []float64{0, 1, 2}},
			{Name: "down", X: []float64{0, 1, 2}, Y: []float64{2, 1, 0}},
		},
	}
}

func TestFigureCSV(t *testing.T) {
	csv := sampleFigure().CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if lines[0] != "x,up,down" {
		t.Errorf("header = %q", lines[0])
	}
	if len(lines) != 4 {
		t.Fatalf("rows = %d, want 4", len(lines))
	}
	if lines[1] != "0,0,2" {
		t.Errorf("row 1 = %q", lines[1])
	}
}

func TestFigureASCII(t *testing.T) {
	s := sampleFigure().ASCII(40, 10)
	for _, want := range []string{"fig0", "a = up", "b = down", "x: x in [0, 2]"} {
		if !strings.Contains(s, want) {
			t.Errorf("ASCII missing %q in:\n%s", want, s)
		}
	}
	// Both marks must appear in the plot body.
	if !strings.Contains(s, "a") || !strings.Contains(s, "b") {
		t.Error("marks missing from plot")
	}
}

func TestFigureASCIIEmpty(t *testing.T) {
	f := Figure{ID: "e", Title: "empty"}
	if s := f.ASCII(40, 10); !strings.Contains(s, "no data") {
		t.Errorf("empty figure = %q", s)
	}
}

func TestFigureASCIIDegenerate(t *testing.T) {
	f := Figure{ID: "d", Title: "flat", Series: []Series{{Name: "s", X: []float64{1}, Y: []float64{5}}}}
	s := f.ASCII(1, 1) // forces minimum sizing
	if !strings.Contains(s, "s") {
		t.Errorf("flat figure render = %q", s)
	}
}

func TestTableTextAndCSV(t *testing.T) {
	tb := Table{Title: "T", Columns: []string{"a", "bb"}}
	tb.AddRow("x", 1)
	tb.AddRow(3.5, "with,comma")
	text := tb.Text()
	for _, want := range []string{"T", "a", "bb", "x", "3.5", "with,comma", "--"} {
		if !strings.Contains(text, want) {
			t.Errorf("Text missing %q in:\n%s", want, text)
		}
	}
	csv := tb.CSV()
	if !strings.Contains(csv, `"with,comma"`) {
		t.Errorf("CSV should quote comma cells: %q", csv)
	}
	if !strings.HasPrefix(csv, "a,bb\n") {
		t.Errorf("CSV header wrong: %q", csv)
	}
}

func TestTableCSVQuotesQuotes(t *testing.T) {
	tb := Table{Columns: []string{"c"}}
	tb.AddRow(`say "hi"`)
	if !strings.Contains(tb.CSV(), `"say ""hi"""`) {
		t.Errorf("CSV quote escaping wrong: %q", tb.CSV())
	}
}

func TestTableMarkdown(t *testing.T) {
	tb := Table{Title: "T", Columns: []string{"a", "b"}}
	tb.AddRow("x|y", 1)
	md := tb.Markdown()
	for _, want := range []string{"**T**", "| a | b |", "|---|---|", `x\|y`} {
		if !strings.Contains(md, want) {
			t.Errorf("Markdown missing %q in:\n%s", want, md)
		}
	}
}
