package report

import (
	"strings"
	"testing"
	"time"

	"sdnavail/internal/stats"
	"sdnavail/internal/telemetry"
)

func TestRecoveryTable(t *testing.T) {
	r := telemetry.NewRecovery()
	r.Observe("election/cassandra-config", 50*time.Millisecond)
	r.Observe("election/cassandra-config", 70*time.Millisecond)
	r.Observe("catchup/cassandra-config", 30*time.Millisecond)
	tbl := RecoveryTable(r)
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 kinds", len(tbl.Rows))
	}
	// Kinds() sorts, so catchup precedes election.
	if tbl.Rows[0][0] != "catchup/cassandra-config" || tbl.Rows[1][0] != "election/cassandra-config" {
		t.Fatalf("kind order: %v", tbl.Rows)
	}
	text := tbl.Text()
	if !strings.Contains(text, "0.0600") {
		t.Fatalf("mean election 0.0600 missing:\n%s", text)
	}
	// A nil tracker renders an empty table rather than panicking.
	if empty := RecoveryTable(nil); len(empty.Rows) != 0 {
		t.Fatalf("nil tracker produced rows: %v", empty.Rows)
	}
}

func TestElectionTable(t *testing.T) {
	tbl := ElectionTable(42, 3, 0.06,
		stats.Interval{Mean: 1e-4, HalfWide: 2e-5, Level: 0.99, N: 8},
		stats.Interval{Mean: 5e-6, HalfWide: 1e-6, Level: 0.99, N: 8})
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(tbl.Rows))
	}
	text := tbl.Text()
	for _, want := range []string{"42", "0.06000", "wrong-read", "min/year"} {
		if !strings.Contains(text, want) {
			t.Fatalf("%q missing from:\n%s", want, text)
		}
	}
}
