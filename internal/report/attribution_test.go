package report

import (
	"testing"

	"sdnavail/internal/telemetry"
)

// Golden-output regression tests: the rendered attribution tables are part
// of the tool output contract (EXPERIMENTS.md walks through them), so
// their exact text, CSV and Markdown forms are pinned here.

func sampleAttribution() telemetry.Attribution {
	return telemetry.Attribution{
		Plane: "cp", DowntimeHours: 1.5, Intervals: 3,
		Modes: []telemetry.ModeShare{
			{Mode: "process:cassandra-db (Config)", Hours: 1.0, Share: 2.0 / 3, Intervals: 2},
			{Mode: "process:zookeeper", Hours: 0.5, Share: 1.0 / 3, Intervals: 1},
		},
	}
}

func TestAttributionTableGoldenText(t *testing.T) {
	got := AttributionTable(sampleAttribution()).Text()
	want := "Downtime attribution — cp (1.5 h down over 3 interval(s))\n" +
		"Failure mode                   Downtime (h)  Share   Intervals\n" +
		"-----------------------------  ------------  ------  ---------\n" +
		"process:cassandra-db (Config)  1             66.67%  2        \n" +
		"process:zookeeper              0.5           33.33%  1        \n"
	if got != want {
		t.Errorf("Text() drifted:\n got:\n%s\nwant:\n%s", got, want)
	}
}

func TestAttributionTableGoldenCSV(t *testing.T) {
	got := AttributionTable(sampleAttribution()).CSV()
	want := "Failure mode,Downtime (h),Share,Intervals\n" +
		"process:cassandra-db (Config),1,66.67%,2\n" +
		"process:zookeeper,0.5,33.33%,1\n"
	if got != want {
		t.Errorf("CSV() drifted:\n got:\n%s\nwant:\n%s", got, want)
	}
}

func TestAttributionTableGoldenMarkdown(t *testing.T) {
	got := AttributionTable(sampleAttribution()).Markdown()
	want := "**Downtime attribution — cp (1.5 h down over 3 interval(s))**\n\n" +
		"| Failure mode | Downtime (h) | Share | Intervals |\n" +
		"|---|---|---|---|\n" +
		"| process:cassandra-db (Config) | 1 | 66.67% | 2 |\n" +
		"| process:zookeeper | 0.5 | 33.33% | 1 |\n"
	if got != want {
		t.Errorf("Markdown() drifted:\n got:\n%s\nwant:\n%s", got, want)
	}
}

func TestAttributionFigureGoldenCSV(t *testing.T) {
	f := AttributionFigure(sampleAttribution())
	if f.ID != "attribution-cp" {
		t.Errorf("figure ID = %q", f.ID)
	}
	got := f.CSV()
	want := "x,cp\n1,0.6666666667\n2,0.3333333333\n"
	if got != want {
		t.Errorf("figure CSV drifted:\n got:\n%s\nwant:\n%s", got, want)
	}
}

func TestAttributionComparisonTableGolden(t *testing.T) {
	cmp := AttributionComparisonTable("Shares", []string{"live", "analytic"},
		[]map[string]float64{
			{"process:a": 0.75, "process:b": 0.25},
			{"process:a": 0.5, "process:b": 0.25, "process:c": 0.25},
		})
	gotText := cmp.Text()
	wantText := "Shares\n" +
		"Failure mode  live    analytic\n" +
		"------------  ------  --------\n" +
		"process:a     75.00%  50.00%  \n" +
		"process:b     25.00%  25.00%  \n" +
		"process:c     0.00%   25.00%  \n"
	if gotText != wantText {
		t.Errorf("Text() drifted:\n got:\n%s\nwant:\n%s", gotText, wantText)
	}
	gotCSV := cmp.CSV()
	wantCSV := "Failure mode,live,analytic\n" +
		"process:a,75.00%,50.00%\n" +
		"process:b,25.00%,25.00%\n" +
		"process:c,0.00%,25.00%\n"
	if gotCSV != wantCSV {
		t.Errorf("CSV() drifted:\n got:\n%s\nwant:\n%s", gotCSV, wantCSV)
	}
}

// TestAttributionComparisonOrdering: modes sort by the first source's
// share descending, ties and first-source absentees alphabetically.
func TestAttributionComparisonOrdering(t *testing.T) {
	cmp := AttributionComparisonTable("t", []string{"s"},
		[]map[string]float64{{"b": 0.5, "a": 0.5, "z": 0.9}})
	want := []string{"z", "a", "b"}
	for i, row := range cmp.Rows {
		if row[0] != want[i] {
			t.Fatalf("row %d = %v, want mode %q first column", i, row, want[i])
		}
	}
}

func TestAttributionTableEmpty(t *testing.T) {
	tb := AttributionTable(telemetry.Attribution{Plane: "dp"})
	if len(tb.Rows) != 0 {
		t.Errorf("empty attribution rendered %d rows", len(tb.Rows))
	}
	if tb.Text() == "" {
		t.Error("empty attribution table lost its header")
	}
}
