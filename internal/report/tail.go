package report

import (
	"fmt"
	"math"
)

// TailRow is one deep-tail availability estimate for the rare-event tail
// table: a labelled configuration with its LR-weighted unavailability,
// convergence diagnostics, and the replication-count speedup over naive
// Monte Carlo at the same precision.
type TailRow struct {
	// Label names the configuration (placement, option, series point).
	Label string
	// Unavailability is the LR-weighted CP unavailability estimate and
	// HalfWidth its confidence half-width.
	Unavailability float64
	HalfWidth      float64
	// Replications is the rare-event replication count actually spent;
	// ESS the effective sample size of the terminal weights.
	Replications int
	ESS          float64
	// HitProb is the estimated probability that one naive replication
	// would observe any CP downtime — the quantity that sizes the naive
	// baseline.
	HitProb float64
	// NaiveReplications is the extrapolated naive replication count to the
	// same relative error; Speedup its ratio to Replications. Zero when
	// the baseline is not estimable (no hits observed).
	NaiveReplications float64
	Speedup           float64
	// Splits and Kills summarize importance-splitting activity.
	Splits int
	Kills  int
}

// Nines converts an unavailability into "nines of availability":
// 1e-9 → 9.0, 3.2e-8 → 7.5. Infinite for a zero estimate.
func Nines(unavailability float64) float64 {
	if unavailability <= 0 {
		return math.Inf(1)
	}
	return -math.Log10(unavailability)
}

// NaiveReplications extrapolates the replication count naive Monte Carlo
// would need to estimate an unavailability with relative error relErr at
// normal quantile z, given the probability hitProb that a single naive
// replication observes any downtime. The bound models the dominant
// rare-event variance term — the Bernoulli mass of seeing an outage at
// all — so it is a floor on the true naive cost (downtime-magnitude
// spread only adds to it): z²·(1/p − 1)/ε². Returns 0 when hitProb or
// relErr is not positive (no baseline estimable).
func NaiveReplications(hitProb, relErr, z float64) float64 {
	if hitProb <= 0 || relErr <= 0 || z <= 0 {
		return 0
	}
	return z * z * (1/hitProb - 1) / (relErr * relErr)
}

// TailTable renders deep-tail rows: unavailability with its nines,
// relative error, effective sample size, and the naive-MC speedup.
func TailTable(title string, rows []TailRow) Table {
	t := Table{
		Title: title,
		Columns: []string{
			"configuration", "unavailability", "nines", "rel err",
			"reps", "ESS", "splits", "naive reps", "speedup",
		},
	}
	for _, r := range rows {
		rel := math.Inf(1)
		if r.Unavailability > 0 {
			rel = r.HalfWidth / r.Unavailability
		}
		nines := "inf"
		if n := Nines(r.Unavailability); !math.IsInf(n, 1) {
			nines = fmt.Sprintf("%.2f", n)
		}
		naive, speedup := "-", "-"
		if r.NaiveReplications > 0 {
			naive = fmt.Sprintf("%.3g", r.NaiveReplications)
			if r.Speedup > 0 {
				speedup = fmt.Sprintf("%.3gx", r.Speedup)
			}
		}
		t.AddRow(
			r.Label,
			fmt.Sprintf("%.3e ± %.1e", r.Unavailability, r.HalfWidth),
			nines,
			fmt.Sprintf("%.1f%%", rel*100),
			r.Replications,
			fmt.Sprintf("%.0f", r.ESS),
			r.Splits,
			naive,
			speedup,
		)
	}
	return t
}
