package topology

import (
	"fmt"
	"sort"
)

// The network graph generalizes the containment tree: racks and hosts stay
// containment attributes, but connectivity between them becomes explicit
// typed links with per-link failure modes. Two reserved infrastructure
// nodes complete the graph:
//
//   - "edge" is where the served traffic enters the control network — the
//     vantage point of the vRouters/switches. A host is *connected* iff a
//     path of live links joins it to the edge; a control process serves
//     traffic only while its host is connected.
//   - "fabric" is the inter-rack core (spine). Rack uplinks land on it and
//     the edge attaches to it.
//
// A topology with no declared links keeps the seed tree semantics exactly:
// every layer treats the graph as absent and no behavior changes.
const (
	// EdgeNode is the reserved graph-node name for the service edge.
	EdgeNode = "edge"
	// FabricNode is the reserved graph-node name for the inter-rack core.
	FabricNode = "fabric"
)

// LinkKind types a graph link by its role in the fabric.
type LinkKind int

const (
	// Uplink joins a host to its top-of-rack switch (host ↔ rack).
	Uplink LinkKind = iota
	// FabricLink joins a rack to the inter-rack core (rack ↔ fabric).
	FabricLink
	// Adjacency joins the service edge to the control network
	// (edge ↔ fabric, or edge ↔ rack/host for bespoke layouts).
	Adjacency
)

// String names the link kind.
func (k LinkKind) String() string {
	switch k {
	case Uplink:
		return "uplink"
	case FabricLink:
		return "fabric"
	case Adjacency:
		return "adjacency"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Link is one failure-prone edge of the network graph. Endpoints name
// graph nodes: EdgeNode, FabricNode, a rack name, or a host name.
// MTBF/MTTR are hours; MTBF == 0 declares the link perfect (never fails),
// which keeps it out of every stochastic engine entirely.
type Link struct {
	Name string // optional; ID() falls back to "A--B"
	Kind LinkKind
	A, B string
	MTBF float64
	MTTR float64
}

// ID returns the link's unique identifier: Name when set, "A--B" otherwise.
func (l Link) ID() string {
	if l.Name != "" {
		return l.Name
	}
	return l.A + "--" + l.B
}

// Fallible reports whether the link can fail (MTBF > 0).
func (l Link) Fallible() bool { return l.MTBF > 0 }

// Availability is the link's steady-state availability MTBF/(MTBF+MTTR),
// or 1 for a perfect link.
func (l Link) Availability() float64 {
	if l.MTBF <= 0 {
		return 1
	}
	return l.MTBF / (l.MTBF + l.MTTR)
}

// DefaultLinks builds the canonical fabric for a containment tree: one
// uplink per host to its rack's ToR ("up:<host>"), one fabric link per
// rack to the core ("fab:<rack>"), and one edge adjacency ("adj:edge").
// Every link gets the same MTBF/MTTR; pass 0, 0 for perfect links (useful
// to pin graph-mode evaluation against tree-mode results).
func DefaultLinks(t *Topology, mtbf, mttr float64) []Link {
	var links []Link
	for _, rack := range t.Racks {
		for _, host := range rack.Hosts {
			links = append(links, Link{
				Name: "up:" + host.Name, Kind: Uplink,
				A: host.Name, B: rack.Name, MTBF: mtbf, MTTR: mttr,
			})
		}
		links = append(links, Link{
			Name: "fab:" + rack.Name, Kind: FabricLink,
			A: rack.Name, B: FabricNode, MTBF: mtbf, MTTR: mttr,
		})
	}
	links = append(links, Link{
		Name: "adj:edge", Kind: Adjacency,
		A: EdgeNode, B: FabricNode, MTBF: mtbf, MTTR: mttr,
	})
	return links
}

// WithDefaultLinks attaches DefaultLinks to the topology and returns it,
// for chaining off the reference builders.
func (t *Topology) WithDefaultLinks(mtbf, mttr float64) *Topology {
	t.Links = DefaultLinks(t, mtbf, mttr)
	return t
}

// HasFallibleLinks reports whether any declared link can actually fail.
// The stochastic engines only leave pure tree semantics when this is true.
func (t *Topology) HasFallibleLinks() bool {
	for _, l := range t.Links {
		if l.Fallible() {
			return true
		}
	}
	return false
}

// halfEdge is one direction of a link in the adjacency list.
type halfEdge struct {
	to   int // node index
	link int // index into Graph.Links
}

// Graph is the compiled network graph of a topology: node 0 is the edge,
// node 1 the fabric, then racks and hosts in declaration order.
type Graph struct {
	Names []string // node index -> name
	Links []Link

	index   map[string]int // name -> node index
	linkIdx map[string]int // link ID -> link index
	adj     [][]halfEdge
	linkA   []int // link index -> endpoint node indices
	linkB   []int
	hostOf  []string // node index -> host name, or "" for non-host nodes

	// tree structure from an all-links-up BFS rooted at the edge, valid
	// only when the graph is a tree (connected, |E| == |V|-1): parentLink
	// is the link joining each node to its parent (-1 for the edge). The
	// incremental connectivity uses it to bound cut updates to the severed
	// subtree.
	isTree     bool
	parentLink []int
}

// Graph compiles the topology's links into an adjacency structure. It is
// valid to call on a link-free topology (the graph then has nodes but no
// edges); callers gate graph semantics on len(t.Links) > 0.
func (t *Topology) Graph() (*Graph, error) {
	g := &Graph{index: map[string]int{}, linkIdx: map[string]int{}}
	addNode := func(name, host string) {
		g.index[name] = len(g.Names)
		g.Names = append(g.Names, name)
		g.hostOf = append(g.hostOf, host)
	}
	addNode(EdgeNode, "")
	addNode(FabricNode, "")
	for _, rack := range t.Racks {
		addNode(rack.Name, "")
	}
	for _, rack := range t.Racks {
		for _, host := range rack.Hosts {
			addNode(host.Name, host.Name)
		}
	}
	g.adj = make([][]halfEdge, len(g.Names))
	for _, l := range t.Links {
		a, okA := g.index[l.A]
		b, okB := g.index[l.B]
		if !okA {
			return nil, t.errf(ErrDanglingLink, "link %q endpoint %q names no node", l.ID(), l.A)
		}
		if !okB {
			return nil, t.errf(ErrDanglingLink, "link %q endpoint %q names no node", l.ID(), l.B)
		}
		if a == b {
			return nil, t.errf(ErrBadLink, "link %q is a self-loop on %q", l.ID(), l.A)
		}
		if l.MTBF < 0 || l.MTTR < 0 {
			return nil, t.errf(ErrBadLink, "link %q has negative MTBF/MTTR", l.ID())
		}
		if l.Fallible() && l.MTTR <= 0 {
			return nil, t.errf(ErrBadLink, "link %q fails (MTBF %g) but never repairs (MTTR %g)", l.ID(), l.MTBF, l.MTTR)
		}
		if _, dup := g.linkIdx[l.ID()]; dup {
			return nil, t.errf(ErrBadLink, "duplicate link %q", l.ID())
		}
		li := len(g.Links)
		g.linkIdx[l.ID()] = li
		g.Links = append(g.Links, l)
		g.linkA = append(g.linkA, a)
		g.linkB = append(g.linkB, b)
		g.adj[a] = append(g.adj[a], halfEdge{to: b, link: li})
		g.adj[b] = append(g.adj[b], halfEdge{to: a, link: li})
	}
	if len(t.Links) > 0 {
		if err := g.checkConnected(t); err != nil {
			return nil, err
		}
		g.compileTree()
	}
	return g, nil
}

// checkConnected verifies every host reaches the edge with all links up.
func (g *Graph) checkConnected(t *Topology) error {
	seen := make([]bool, len(g.Names))
	queue := []int{0}
	seen[0] = true
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, he := range g.adj[n] {
			if !seen[he.to] {
				seen[he.to] = true
				queue = append(queue, he.to)
			}
		}
	}
	for i, host := range g.hostOf {
		if host != "" && !seen[i] {
			return t.errf(ErrDisconnected, "host %q has no path to the edge even with all links up", host)
		}
	}
	return nil
}

// compileTree detects tree-shaped graphs and records parent links from an
// edge-rooted BFS.
func (g *Graph) compileTree() {
	if len(g.Links) != len(g.Names)-1 {
		return
	}
	parent := make([]int, len(g.Names))
	for i := range parent {
		parent[i] = -2 // unvisited
	}
	parent[0] = -1
	queue := []int{0}
	visited := 1
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, he := range g.adj[n] {
			if parent[he.to] == -2 {
				parent[he.to] = he.link
				visited++
				queue = append(queue, he.to)
			}
		}
	}
	if visited != len(g.Names) {
		return // |E| == |V|-1 but disconnected (has a cycle elsewhere)
	}
	g.isTree = true
	g.parentLink = parent
}

// NodeIndex resolves a node name to its graph index.
func (g *Graph) NodeIndex(name string) (int, bool) {
	i, ok := g.index[name]
	return i, ok
}

// LinkIndex resolves a link ID to its index into Links.
func (g *Graph) LinkIndex(id string) (int, bool) {
	i, ok := g.linkIdx[id]
	return i, ok
}

// HostName returns the host name of a node index, or "" for edge, fabric
// and rack nodes.
func (g *Graph) HostName(node int) string { return g.hostOf[node] }

// LinkIDs returns the link identifiers in declaration order.
func (g *Graph) LinkIDs() []string {
	ids := make([]string, len(g.Links))
	for i, l := range g.Links {
		ids[i] = l.ID()
	}
	return ids
}

// FallibleLinks returns the indices of links with MTBF > 0, in
// declaration order.
func (g *Graph) FallibleLinks() []int {
	var idx []int
	for i, l := range g.Links {
		if l.Fallible() {
			idx = append(idx, i)
		}
	}
	return idx
}

// PathLinks returns the link indices on the unique edge→node path of a
// tree-shaped graph, ordered node-to-edge. It errors on non-tree graphs,
// where "the" path does not exist.
func (g *Graph) PathLinks(node int) ([]int, error) {
	if !g.isTree {
		return nil, fmt.Errorf("topology: graph is not a tree; no unique edge path")
	}
	var path []int
	for n := node; g.parentLink[n] != -1; {
		li := g.parentLink[n]
		path = append(path, li)
		if g.linkA[li] == n {
			n = g.linkB[li]
		} else {
			n = g.linkA[li]
		}
	}
	return path, nil
}

// Connectivity tracks which nodes can reach the edge as links flip up and
// down, incrementally: a restore expands reachability outward from the
// rejoined component, a cut shrinks it by walking only the severed
// subtree (tree graphs) or the affected component (general graphs) —
// never the whole graph per event. One instance serves one single-threaded
// consumer; callers holding several simulations build one each.
type Connectivity struct {
	g        *Graph
	linkDown []bool
	reach    []bool

	queue   []int
	mark    []int
	epoch   int
	changed []int
}

// NewConnectivity builds the tracker with every link up.
func NewConnectivity(g *Graph) *Connectivity {
	c := &Connectivity{
		g:        g,
		linkDown: make([]bool, len(g.Links)),
		reach:    make([]bool, len(g.Names)),
		mark:     make([]int, len(g.Names)),
	}
	c.Reset()
	return c
}

// Reset restores every link to up and recomputes reachability.
func (c *Connectivity) Reset() {
	for i := range c.linkDown {
		c.linkDown[i] = false
	}
	c.recomputeFull()
}

// Reachable reports whether the node can reach the edge right now.
func (c *Connectivity) Reachable(node int) bool { return c.reach[node] }

// LinkDown reports whether the link is currently cut.
func (c *Connectivity) LinkDown(link int) bool { return c.linkDown[link] }

// Graph returns the compiled graph this tracker runs over.
func (c *Connectivity) Graph() *Graph { return c.g }

// SetLink flips one link and returns the node indices whose reachability
// changed (the "dirty component"). The returned slice is reused across
// calls; consume it before the next SetLink.
func (c *Connectivity) SetLink(link int, up bool) []int {
	c.changed = c.changed[:0]
	if c.linkDown[link] == !up {
		return c.changed // already in that state
	}
	c.linkDown[link] = !up
	a, b := c.g.linkA[link], c.g.linkB[link]
	if up {
		if c.reach[a] == c.reach[b] {
			// Both reachable (redundant path) or both marooned (still no
			// route to the edge): nothing changes.
			return c.changed
		}
		from := a
		if c.reach[a] {
			from = b
		}
		c.expand(from)
		return c.changed
	}
	if !c.reach[a] && !c.reach[b] {
		return c.changed // cut inside an already-dark region
	}
	if c.g.isTree {
		// The severed side is the endpoint whose parent link this is; only
		// its subtree can go dark.
		child := a
		if c.g.parentLink[b] == link {
			child = b
		}
		if !c.reach[child] {
			return c.changed
		}
		c.drain(child)
		return c.changed
	}
	c.shrink()
	return c.changed
}

// expand BFS-marks newly reachable nodes outward from a node that just
// gained a route to the edge.
func (c *Connectivity) expand(from int) {
	c.reach[from] = true
	c.changed = append(c.changed, from)
	c.queue = append(c.queue[:0], from)
	for head := 0; head < len(c.queue); head++ {
		n := c.queue[head]
		for _, he := range c.g.adj[n] {
			if c.linkDown[he.link] || c.reach[he.to] {
				continue
			}
			c.reach[he.to] = true
			c.changed = append(c.changed, he.to)
			c.queue = append(c.queue, he.to)
		}
	}
}

// drain BFS-unmarks the reachable part of a severed tree subtree.
func (c *Connectivity) drain(child int) {
	c.reach[child] = false
	c.changed = append(c.changed, child)
	c.queue = append(c.queue[:0], child)
	for head := 0; head < len(c.queue); head++ {
		n := c.queue[head]
		for _, he := range c.g.adj[n] {
			if c.linkDown[he.link] || !c.reach[he.to] {
				continue
			}
			c.reach[he.to] = false
			c.changed = append(c.changed, he.to)
			c.queue = append(c.queue, he.to)
		}
	}
}

// shrink re-derives reachability inside the previously-reachable
// component after a cut on a general (non-tree) graph. Unreachable
// regions are never scanned: the BFS runs over live links between
// previously-reachable nodes only.
func (c *Connectivity) shrink() {
	c.epoch++
	c.mark[0] = c.epoch
	c.queue = append(c.queue[:0], 0)
	for head := 0; head < len(c.queue); head++ {
		n := c.queue[head]
		for _, he := range c.g.adj[n] {
			if c.linkDown[he.link] || c.mark[he.to] == c.epoch || !c.reach[he.to] {
				continue
			}
			c.mark[he.to] = c.epoch
			c.queue = append(c.queue, he.to)
		}
	}
	for n := range c.reach {
		if c.reach[n] && c.mark[n] != c.epoch {
			c.reach[n] = false
			c.changed = append(c.changed, n)
		}
	}
}

// recomputeFull is the naive baseline: a full BFS from the edge over live
// links. The incremental path must always agree with it; benchmarks pit
// SetLink against calling this per event.
func (c *Connectivity) recomputeFull() {
	for i := range c.reach {
		c.reach[i] = false
	}
	c.reach[0] = true
	c.queue = append(c.queue[:0], 0)
	for head := 0; head < len(c.queue); head++ {
		n := c.queue[head]
		for _, he := range c.g.adj[n] {
			if c.linkDown[he.link] || c.reach[he.to] {
				continue
			}
			c.reach[he.to] = true
			c.queue = append(c.queue, he.to)
		}
	}
}

// RecomputeFull recomputes reachability from scratch at the current link
// states (the naive per-event baseline the benchmark compares against).
func (c *Connectivity) RecomputeFull() { c.recomputeFull() }

// Snapshot returns the sorted indices of currently reachable nodes, for
// tests comparing incremental state against the naive baseline.
func (c *Connectivity) Snapshot() []int {
	var up []int
	for n, r := range c.reach {
		if r {
			up = append(up, n)
		}
	}
	sort.Ints(up)
	return up
}
