package topology

import (
	"bytes"
	"encoding/json"
	"fmt"

	"sdnavail/internal/profile"
)

// JSON serialization for topologies, so custom placements can be described
// declaratively and priced with the exact evaluator:
//
//	{
//	  "name": "my-layout",
//	  "clusterSize": 3,
//	  "roles": ["Config", "Control", "Analytics", "Database"],
//	  "racks": [
//	    {"name": "R1", "hosts": [
//	      {"name": "H1", "vms": [
//	        {"name": "GCAD1", "placements": [
//	          {"role": "Config", "node": 0}, {"role": "Control", "node": 0}
//	        ]}
//	      ]}
//	    ]}
//	  ]
//	}

type jsonPlacement struct {
	Role string `json:"role"`
	Node int    `json:"node"`
}

type jsonVM struct {
	Name       string          `json:"name"`
	Placements []jsonPlacement `json:"placements"`
}

type jsonHost struct {
	Name string   `json:"name"`
	VMs  []jsonVM `json:"vms"`
}

type jsonRack struct {
	Name  string     `json:"name"`
	Hosts []jsonHost `json:"hosts"`
}

type jsonLink struct {
	Name string  `json:"name,omitempty"`
	Kind string  `json:"kind"`
	A    string  `json:"a"`
	B    string  `json:"b"`
	MTBF float64 `json:"mtbfHours,omitempty"`
	MTTR float64 `json:"mttrHours,omitempty"`
}

type jsonTopology struct {
	Name        string     `json:"name"`
	ClusterSize int        `json:"clusterSize"`
	Roles       []string   `json:"roles"`
	Racks       []jsonRack `json:"racks"`
	Links       []jsonLink `json:"links,omitempty"`
}

// linkKindNames maps the JSON spelling to the typed kind; keep in sync
// with LinkKind.String.
var linkKindNames = map[string]LinkKind{
	"uplink":    Uplink,
	"fabric":    FabricLink,
	"adjacency": Adjacency,
}

// ToJSON renders the topology as indented JSON.
func ToJSON(t *Topology) ([]byte, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	jt := jsonTopology{Name: t.Name, ClusterSize: t.ClusterSize}
	for _, r := range t.Roles {
		jt.Roles = append(jt.Roles, string(r))
	}
	for _, rack := range t.Racks {
		jr := jsonRack{Name: rack.Name}
		for _, host := range rack.Hosts {
			jh := jsonHost{Name: host.Name}
			for _, vm := range host.VMs {
				jv := jsonVM{Name: vm.Name}
				for _, pl := range vm.Placements {
					jv.Placements = append(jv.Placements, jsonPlacement{Role: string(pl.Role), Node: pl.Node})
				}
				jh.VMs = append(jh.VMs, jv)
			}
			jr.Hosts = append(jr.Hosts, jh)
		}
		jt.Racks = append(jt.Racks, jr)
	}
	for _, l := range t.Links {
		jt.Links = append(jt.Links, jsonLink{
			Name: l.Name, Kind: l.Kind.String(),
			A: l.A, B: l.B, MTBF: l.MTBF, MTTR: l.MTTR,
		})
	}
	return json.MarshalIndent(jt, "", "  ")
}

// FromJSON parses and validates a topology. Parsed layouts are Custom
// kind regardless of their shape. Decoding is strict: unknown fields are
// rejected, so a typo'd key fails loudly instead of silently dropping a
// constraint.
func FromJSON(data []byte) (*Topology, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var jt jsonTopology
	if err := dec.Decode(&jt); err != nil {
		return nil, fmt.Errorf("topology: parsing JSON: %w", err)
	}
	t := &Topology{
		Name:        jt.Name,
		Kind:        Custom,
		ClusterSize: jt.ClusterSize,
	}
	for _, r := range jt.Roles {
		t.Roles = append(t.Roles, profile.Role(r))
	}
	for _, jr := range jt.Racks {
		rack := Rack{Name: jr.Name}
		for _, jh := range jr.Hosts {
			host := Host{Name: jh.Name}
			for _, jv := range jh.VMs {
				vm := VM{Name: jv.Name}
				for _, jp := range jv.Placements {
					vm.Placements = append(vm.Placements, Placement{Role: profile.Role(jp.Role), Node: jp.Node})
				}
				host.VMs = append(host.VMs, vm)
			}
			rack.Hosts = append(rack.Hosts, host)
		}
		t.Racks = append(t.Racks, rack)
	}
	for _, jl := range jt.Links {
		kind, ok := linkKindNames[jl.Kind]
		if !ok {
			return nil, &Error{Kind: ErrBadLink, Topology: t.Name,
				Detail: fmt.Sprintf("link %q has unknown kind %q", jl.Name, jl.Kind)}
		}
		t.Links = append(t.Links, Link{
			Name: jl.Name, Kind: kind,
			A: jl.A, B: jl.B, MTBF: jl.MTBF, MTTR: jl.MTTR,
		})
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
