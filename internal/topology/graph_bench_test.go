package topology

import (
	"encoding/json"
	"math/rand"
	"os"
	"testing"
	"time"
)

// Graph-recompute benchmark: incremental Connectivity.SetLink against the
// naive per-event full BFS, on a synthetic fabric large enough that the
// difference matters (64 racks × 16 hosts ≈ 1k nodes). The event script
// is a seeded random walk over link states, so both arms replay exactly
// the same sequence.

const (
	benchRacks        = 64
	benchHostsPerRack = 16
	benchEvents       = 20_000
)

func benchGraph(tb testing.TB) *Graph {
	topo := &Topology{Name: "bench", ClusterSize: 3}
	for r := 0; r < benchRacks; r++ {
		rack := Rack{Name: "R" + itoa(r)}
		for h := 0; h < benchHostsPerRack; h++ {
			rack.Hosts = append(rack.Hosts, Host{Name: "R" + itoa(r) + "H" + itoa(h)})
		}
		topo.Racks = append(topo.Racks, rack)
	}
	topo.Links = DefaultLinks(topo, 10_000, 4)
	g, err := topo.Graph()
	if err != nil {
		tb.Fatal(err)
	}
	return g
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// benchScript pre-rolls the event sequence so neither arm pays RNG cost.
type linkEvent struct {
	link int
	up   bool
}

func benchScript(g *Graph) []linkEvent {
	rng := rand.New(rand.NewSource(99))
	down := make([]bool, len(g.Links))
	events := make([]linkEvent, benchEvents)
	for i := range events {
		li := rng.Intn(len(g.Links))
		events[i] = linkEvent{link: li, up: down[li]}
		down[li] = !down[li]
	}
	return events
}

func BenchmarkConnectivityIncremental(b *testing.B) {
	g := benchGraph(b)
	events := benchScript(g)
	conn := NewConnectivity(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := events[i%len(events)]
		conn.SetLink(ev.link, ev.up)
	}
}

func BenchmarkConnectivityNaiveBFS(b *testing.B) {
	g := benchGraph(b)
	events := benchScript(g)
	conn := NewConnectivity(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := events[i%len(events)]
		conn.linkDown[ev.link] = !ev.up
		conn.RecomputeFull()
	}
}

// TestWriteTopologyBenchArtifact times the same scripted event sequence
// through the incremental tracker and the naive per-event BFS and writes
// BENCH_topology.json to the path named by BENCH_TOPOLOGY_OUT. Skipped
// unless the variable is set:
//
//	BENCH_TOPOLOGY_OUT=$PWD/BENCH_topology.json go test ./internal/topology/ -run WriteTopologyBenchArtifact -v
func TestWriteTopologyBenchArtifact(t *testing.T) {
	out := os.Getenv("BENCH_TOPOLOGY_OUT")
	if out == "" {
		t.Skip("set BENCH_TOPOLOGY_OUT to write the benchmark artifact")
	}
	g := benchGraph(t)
	events := benchScript(g)

	runIncremental := func() time.Duration {
		conn := NewConnectivity(g)
		start := time.Now()
		for _, ev := range events {
			conn.SetLink(ev.link, ev.up)
		}
		return time.Since(start)
	}
	runNaive := func() time.Duration {
		conn := NewConnectivity(g)
		start := time.Now()
		for _, ev := range events {
			conn.linkDown[ev.link] = !ev.up
			conn.RecomputeFull()
		}
		return time.Since(start)
	}

	// Sanity first: both arms must land in the same state.
	fast, slow := NewConnectivity(g), NewConnectivity(g)
	for _, ev := range events {
		fast.SetLink(ev.link, ev.up)
		slow.linkDown[ev.link] = !ev.up
	}
	slow.RecomputeFull()
	fs, ss := fast.Snapshot(), slow.Snapshot()
	if len(fs) != len(ss) {
		t.Fatalf("incremental and naive disagree after script: %d vs %d reachable", len(fs), len(ss))
	}

	runIncremental() // warm up
	runNaive()
	inc, naive := runIncremental(), runNaive()
	speedup := float64(naive) / float64(inc)

	artifact := struct {
		Nodes         int     `json:"nodes"`
		Links         int     `json:"links"`
		Events        int     `json:"events"`
		IncrementalNs int64   `json:"incremental_ns"`
		NaiveBFSNs    int64   `json:"naive_bfs_ns"`
		Speedup       float64 `json:"speedup"`
	}{
		Nodes:         len(g.Names),
		Links:         len(g.Links),
		Events:        len(events),
		IncrementalNs: inc.Nanoseconds(),
		NaiveBFSNs:    naive.Nanoseconds(),
		Speedup:       speedup,
	}
	data, err := json.MarshalIndent(artifact, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("incremental=%v naive=%v speedup=%.1fx -> %s", inc, naive, speedup, out)
	if speedup < 2 {
		t.Errorf("incremental reachability is only %.2fx the naive BFS; expected ≥2x on a %d-node fabric",
			speedup, len(g.Names))
	}
}
