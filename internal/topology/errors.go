package topology

import "fmt"

// ErrorKind classifies topology validation failures, so callers (and the
// JSON fuzzer) can assert on the failure class instead of matching
// message text.
type ErrorKind int

const (
	// ErrCluster: cluster size is not a positive 2N+1.
	ErrCluster ErrorKind = iota
	// ErrDuplicateName: a rack, host or VM name appears twice.
	ErrDuplicateName
	// ErrDuplicatePlacement: one role/node pair is placed on two VMs.
	ErrDuplicatePlacement
	// ErrNodeRange: a placement's node index is outside [0, ClusterSize).
	ErrNodeRange
	// ErrEmptyContainer: a rack has no hosts or a host has no VMs.
	ErrEmptyContainer
	// ErrMissingPlacement: a role/node pair from the profile is unplaced.
	ErrMissingPlacement
	// ErrBadLink: a link is malformed (self-loop, duplicate ID, negative
	// MTBF/MTTR).
	ErrBadLink
	// ErrDanglingLink: a link endpoint names no node in the graph.
	ErrDanglingLink
	// ErrDisconnected: links are declared but some host cannot reach the
	// edge even with every link up.
	ErrDisconnected
)

// String names the kind.
func (k ErrorKind) String() string {
	switch k {
	case ErrCluster:
		return "cluster"
	case ErrDuplicateName:
		return "duplicate-name"
	case ErrDuplicatePlacement:
		return "duplicate-placement"
	case ErrNodeRange:
		return "node-range"
	case ErrEmptyContainer:
		return "empty-container"
	case ErrMissingPlacement:
		return "missing-placement"
	case ErrBadLink:
		return "bad-link"
	case ErrDanglingLink:
		return "dangling-link"
	case ErrDisconnected:
		return "disconnected"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Error is a typed topology validation failure.
type Error struct {
	Kind     ErrorKind
	Topology string // Topology.Name at validation time
	Detail   string // human-readable specifics
}

// Error renders like the historical fmt.Errorf messages:
// "topology <name>: <detail>".
func (e *Error) Error() string {
	return fmt.Sprintf("topology %s: %s", e.Topology, e.Detail)
}

// errf builds a typed validation error with a formatted detail.
func (t *Topology) errf(kind ErrorKind, format string, args ...any) *Error {
	return &Error{Kind: kind, Topology: t.Name, Detail: fmt.Sprintf(format, args...)}
}
