package topology

import (
	"bytes"
	"errors"
	"testing"

	"sdnavail/internal/profile"
)

// FuzzTopologyJSON throws arbitrary bytes at FromJSON and checks the
// round-trip invariant: any input that parses into a valid topology must
// survive ToJSON -> FromJSON with structure (counts, cluster size, links)
// intact and a canonical encoding that is a fixed point. Any rejection
// must be a typed *Error or a JSON parse error — never a panic.
func FuzzTopologyJSON(f *testing.F) {
	// Compact seeds: the minimizer budget punishes multi-kilobyte inputs.
	small := NewSmall([]profile.Role{"Control"}, 1).WithDefaultLinks(8760, 4)
	small.Name = "seed"
	data, err := ToJSON(small)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(data)
	f.Add([]byte(`{"name":"x","clusterSize":1,"roles":["Control"],"racks":[{"name":"R1","hosts":[{"name":"H1","vms":[{"name":"C1","placements":[{"role":"Control","node":0}]}]}]}]}`))
	f.Add([]byte(`{"name":"x","clusterSize":1,"roles":["Control"],"racks":[{"name":"R1","hosts":[{"name":"H1","vms":[{"name":"C1","placements":[{"role":"Control","node":0}]}]}]}],"links":[{"kind":"uplink","a":"H1","b":"R1","mtbfHours":100,"mttrHours":1}]}`))
	f.Add([]byte(`{"links":[{"kind":"warp","a":"H1","b":"zz"}]}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		topo, err := FromJSON(data)
		if err != nil {
			var te *Error
			if !errors.As(err, &te) && !bytes.Contains([]byte(err.Error()), []byte("parsing JSON")) &&
				!bytes.Contains([]byte(err.Error()), []byte("unknown kind")) {
				t.Fatalf("rejection is neither a typed topology error nor a parse error: %v", err)
			}
			return
		}
		enc, err := ToJSON(topo)
		if err != nil {
			t.Fatalf("decoded topology %q failed to re-encode: %v", topo.Name, err)
		}
		back, err := FromJSON(enc)
		if err != nil {
			t.Fatalf("canonical encoding of %q failed to decode: %v", topo.Name, err)
		}
		r1, h1, v1 := topo.Counts()
		r2, h2, v2 := back.Counts()
		if back.Name != topo.Name || back.ClusterSize != topo.ClusterSize ||
			r1 != r2 || h1 != h2 || v1 != v2 || len(back.Links) != len(topo.Links) {
			t.Fatalf("round trip lost structure: %q (%d,%d,%d,%d links) vs %q (%d,%d,%d,%d links)",
				topo.Name, r1, h1, v1, len(topo.Links), back.Name, r2, h2, v2, len(back.Links))
		}
		if topo.QuorumSharesRack() != back.QuorumSharesRack() {
			t.Fatal("round trip flipped QuorumSharesRack")
		}
		enc2, err := ToJSON(back)
		if err != nil {
			t.Fatalf("second encode failed: %v", err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("canonical encoding is not a fixed point:\n%s\nvs\n%s", enc, enc2)
		}
	})
}
