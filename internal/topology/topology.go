// Package topology models physical deployment topologies for a distributed
// SDN controller: the placement of controller role instances onto VMs,
// VMs onto hosts, and hosts onto racks (the paper's Fig. 2).
//
// Three reference topologies span the extremes the paper analyzes:
//
//   - Small:  all roles of a node share one VM (GCAD); three VMs on three
//     hosts in a single rack.
//   - Medium: each role in its own VM; each node's four VMs share a host;
//     hosts 1-2 in rack 1, host 3 in rack 2.
//   - Large:  each role instance in its own VM on its own host; each
//     node's hosts share a rack, one rack per node.
//
// Arbitrary custom layouts are supported for the Monte Carlo simulator and
// the live testbed; the closed-form analytic models dispatch on Kind.
package topology

import (
	"fmt"

	"sdnavail/internal/profile"
)

// Kind tags the reference layout family a topology belongs to.
type Kind int

const (
	// Custom is any layout built by hand rather than a reference builder.
	Custom Kind = iota
	// Small is the paper's Small reference topology.
	Small
	// Medium is the paper's Medium reference topology.
	Medium
	// Large is the paper's Large reference topology.
	Large
)

// roleLetter returns the single-letter VM prefix for a role, following the
// paper's convention: "G" for confiG (to avoid colliding with Control's
// "C"), otherwise the role's first letter.
func roleLetter(r profile.Role) byte {
	if r == profile.Config {
		return 'G'
	}
	return r[0]
}

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Small:
		return "Small"
	case Medium:
		return "Medium"
	case Large:
		return "Large"
	default:
		return "Custom"
	}
}

// Placement locates one controller role instance: role r, node index i
// (0-based across the 2N+1 cluster).
type Placement struct {
	Role profile.Role
	Node int
}

// String renders the placement like "Control/2".
func (pl Placement) String() string { return fmt.Sprintf("%s/%d", pl.Role, pl.Node) }

// VM is a virtual machine (or container) hosting one or more role
// instances.
type VM struct {
	Name       string
	Placements []Placement
}

// Host is a physical server carrying VMs.
type Host struct {
	Name string
	VMs  []VM
}

// Rack is a shared hardware element (power, top-of-rack switching)
// carrying hosts.
type Rack struct {
	Name  string
	Hosts []Host
}

// Topology is a complete controller deployment layout. Links, when
// declared, turn the containment tree into a failure-aware network graph
// (see graph.go); an empty Links keeps the seed tree semantics exactly.
type Topology struct {
	Name        string
	Kind        Kind
	ClusterSize int // 2N+1 controller nodes
	Roles       []profile.Role
	Racks       []Rack
	Links       []Link
}

// NewSmall builds the Small reference topology for the given roles and
// cluster size: node i's roles share VM "GCAD<i>" on host "H<i>", all hosts
// in rack "R1".
func NewSmall(roles []profile.Role, clusterSize int) *Topology {
	rack := Rack{Name: "R1"}
	for i := 0; i < clusterSize; i++ {
		vm := VM{Name: fmt.Sprintf("GCAD%d", i+1)}
		for _, r := range roles {
			vm.Placements = append(vm.Placements, Placement{Role: r, Node: i})
		}
		rack.Hosts = append(rack.Hosts, Host{
			Name: fmt.Sprintf("H%d", i+1),
			VMs:  []VM{vm},
		})
	}
	return &Topology{
		Name:        "Small",
		Kind:        Small,
		ClusterSize: clusterSize,
		Roles:       roles,
		Racks:       []Rack{rack},
	}
}

// NewMedium builds the Medium reference topology: node i's roles occupy
// separate VMs that share host "H<i>"; all hosts but the last share rack
// "R1", the last host sits alone in rack "R2". (With the paper's
// clusterSize = 3: H1, H2 in R1 and H3 in R2, so a quorum of nodes still
// shares rack R1.)
func NewMedium(roles []profile.Role, clusterSize int) *Topology {
	r1 := Rack{Name: "R1"}
	r2 := Rack{Name: "R2"}
	for i := 0; i < clusterSize; i++ {
		h := Host{Name: fmt.Sprintf("H%d", i+1)}
		for _, r := range roles {
			h.VMs = append(h.VMs, VM{
				Name:       fmt.Sprintf("%c%d", roleLetter(r), i+1),
				Placements: []Placement{{Role: r, Node: i}},
			})
		}
		if i < clusterSize-1 {
			r1.Hosts = append(r1.Hosts, h)
		} else {
			r2.Hosts = append(r2.Hosts, h)
		}
	}
	return &Topology{
		Name:        "Medium",
		Kind:        Medium,
		ClusterSize: clusterSize,
		Roles:       roles,
		Racks:       []Rack{r1, r2},
	}
}

// NewLarge builds the Large reference topology: every role instance gets
// its own VM on its own host; node i's hosts share rack "R<i>", one rack
// per node.
func NewLarge(roles []profile.Role, clusterSize int) *Topology {
	t := &Topology{
		Name:        "Large",
		Kind:        Large,
		ClusterSize: clusterSize,
		Roles:       roles,
	}
	hostNum := 1
	for i := 0; i < clusterSize; i++ {
		rack := Rack{Name: fmt.Sprintf("R%d", i+1)}
		for _, r := range roles {
			rack.Hosts = append(rack.Hosts, Host{
				Name: fmt.Sprintf("H%d", hostNum),
				VMs: []VM{{
					Name:       fmt.Sprintf("%c%d", roleLetter(r), i+1),
					Placements: []Placement{{Role: r, Node: i}},
				}},
			})
			hostNum++
		}
		t.Racks = append(t.Racks, rack)
	}
	return t
}

// ByKind builds the reference topology of the given kind.
func ByKind(k Kind, roles []profile.Role, clusterSize int) (*Topology, error) {
	switch k {
	case Small:
		return NewSmall(roles, clusterSize), nil
	case Medium:
		return NewMedium(roles, clusterSize), nil
	case Large:
		return NewLarge(roles, clusterSize), nil
	default:
		return nil, fmt.Errorf("topology: no reference builder for kind %v", k)
	}
}

// Validate checks that the layout is a complete, non-duplicated placement
// of every role on every node, that names are unique, that no rack or
// host is empty, and that declared links form a well-formed graph (known
// endpoints, no self-loops or duplicates, every host connected to the
// edge when all links are up). Failures are *Error values carrying an
// ErrorKind.
func (t *Topology) Validate() error {
	if t.ClusterSize < 1 {
		return t.errf(ErrCluster, "cluster size %d", t.ClusterSize)
	}
	if t.ClusterSize%2 == 0 {
		return t.errf(ErrCluster, "cluster size %d is not 2N+1", t.ClusterSize)
	}
	seen := map[Placement]string{}
	rackNames := map[string]bool{}
	hostNames := map[string]bool{}
	vmNames := map[string]bool{}
	for _, rack := range t.Racks {
		if rackNames[rack.Name] {
			return t.errf(ErrDuplicateName, "duplicate rack %q", rack.Name)
		}
		rackNames[rack.Name] = true
		if len(rack.Hosts) == 0 {
			return t.errf(ErrEmptyContainer, "rack %q has no hosts", rack.Name)
		}
		for _, host := range rack.Hosts {
			if hostNames[host.Name] {
				return t.errf(ErrDuplicateName, "duplicate host %q", host.Name)
			}
			hostNames[host.Name] = true
			if len(host.VMs) == 0 {
				return t.errf(ErrEmptyContainer, "host %q has no VMs", host.Name)
			}
			for _, vm := range host.VMs {
				if vmNames[vm.Name] {
					return t.errf(ErrDuplicateName, "duplicate VM %q", vm.Name)
				}
				vmNames[vm.Name] = true
				for _, pl := range vm.Placements {
					if pl.Node < 0 || pl.Node >= t.ClusterSize {
						return t.errf(ErrNodeRange, "placement %v out of range", pl)
					}
					if prev, dup := seen[pl]; dup {
						return t.errf(ErrDuplicatePlacement, "%v placed on both %q and %q", pl, prev, vm.Name)
					}
					seen[pl] = vm.Name
				}
			}
		}
	}
	for _, r := range t.Roles {
		for i := 0; i < t.ClusterSize; i++ {
			if _, ok := seen[Placement{Role: r, Node: i}]; !ok {
				return t.errf(ErrMissingPlacement, "missing placement %s/%d", r, i)
			}
		}
	}
	if len(t.Links) > 0 {
		// Graph() performs the link checks (dangling endpoints,
		// self-loops, duplicates, negative rates, edge connectivity) and
		// returns typed errors of its own.
		if _, err := t.Graph(); err != nil {
			return err
		}
	}
	return nil
}

// Locate returns the rack, host and VM indices carrying the placement, or
// an error if absent.
func (t *Topology) Locate(pl Placement) (rack, host, vm int, err error) {
	for ri, r := range t.Racks {
		for hi, h := range r.Hosts {
			for vi, v := range h.VMs {
				for _, p := range v.Placements {
					if p == pl {
						return ri, hi, vi, nil
					}
				}
			}
		}
	}
	return 0, 0, 0, fmt.Errorf("topology %s: placement %v not found", t.Name, pl)
}

// Counts returns the number of racks, hosts and VMs in the topology.
func (t *Topology) Counts() (racks, hosts, vms int) {
	racks = len(t.Racks)
	for _, r := range t.Racks {
		hosts += len(r.Hosts)
		for _, h := range r.Hosts {
			vms += len(h.VMs)
		}
	}
	return racks, hosts, vms
}

// QuorumSharesRack reports whether any single rack carries a majority of
// the controller nodes — the condition behind the paper's "one rack or
// three, but not two" observation: if a quorum of nodes shares a rack, that
// rack is a single point of failure for majority-based roles.
func (t *Topology) QuorumSharesRack() bool {
	need := t.ClusterSize/2 + 1
	for _, rack := range t.Racks {
		nodes := map[int]bool{}
		for _, h := range rack.Hosts {
			for _, v := range h.VMs {
				for _, pl := range v.Placements {
					nodes[pl.Node] = true
				}
			}
		}
		if len(nodes) >= need {
			return true
		}
	}
	return false
}

// String renders the layout for diagnostics.
func (t *Topology) String() string {
	s := fmt.Sprintf("%s (%d nodes, kind %v)\n", t.Name, t.ClusterSize, t.Kind)
	for _, rack := range t.Racks {
		s += fmt.Sprintf("  %s:\n", rack.Name)
		for _, h := range rack.Hosts {
			s += fmt.Sprintf("    %s:", h.Name)
			for _, v := range h.VMs {
				s += fmt.Sprintf(" %s%v", v.Name, v.Placements)
			}
			s += "\n"
		}
	}
	return s
}
