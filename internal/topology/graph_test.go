package topology

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"sdnavail/internal/profile"
)

// mustLink resolves a link ID or fails the test.
func mustLink(t *testing.T, g *Graph, id string) int {
	t.Helper()
	i, ok := g.LinkIndex(id)
	if !ok {
		t.Fatalf("link %q not in graph (have %v)", id, g.LinkIDs())
	}
	return i
}

// mustNode resolves a node name or fails the test.
func mustNode(t *testing.T, g *Graph, name string) int {
	t.Helper()
	i, ok := g.NodeIndex(name)
	if !ok {
		t.Fatalf("node %q not in graph", name)
	}
	return i
}

// TestDefaultLinksTree: the default fabric of a reference topology is a
// tree where every host reaches the edge, and cut/restore of single links
// severs and rejoins exactly the expected subtrees.
func TestDefaultLinksTree(t *testing.T) {
	topo := NewMedium(profile.OpenContrail3x().ClusterRoles, 3).WithDefaultLinks(10_000, 4)
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	g, err := topo.Graph()
	if err != nil {
		t.Fatal(err)
	}
	if !g.isTree {
		t.Fatal("default links on a containment tree should compile as a tree")
	}
	conn := NewConnectivity(g)
	for _, h := range []string{"H1", "H2", "H3"} {
		if !conn.Reachable(mustNode(t, g, h)) {
			t.Fatalf("host %s unreachable with all links up", h)
		}
	}

	// Cutting H1's uplink severs exactly H1.
	changed := conn.SetLink(mustLink(t, g, "up:H1"), false)
	if want := []int{mustNode(t, g, "H1")}; !reflect.DeepEqual(changed, want) {
		t.Fatalf("cut up:H1 changed %v, want %v", changed, want)
	}
	if conn.Reachable(mustNode(t, g, "H1")) || !conn.Reachable(mustNode(t, g, "H2")) {
		t.Fatal("cut up:H1 should isolate H1 only")
	}

	// Cutting R1's fabric link takes the rest of rack 1 (R1, H2) dark;
	// H1 is already dark.
	changed = conn.SetLink(mustLink(t, g, "fab:R1"), false)
	if len(changed) != 2 {
		t.Fatalf("cut fab:R1 changed %v, want R1+H2", changed)
	}
	if conn.Reachable(mustNode(t, g, "H2")) || !conn.Reachable(mustNode(t, g, "H3")) {
		t.Fatal("cut fab:R1 should isolate rack 1 but not H3")
	}

	// Cutting H1's uplink again (already down) and restoring it while the
	// rack is dark are both no-ops for reachability.
	if ch := conn.SetLink(mustLink(t, g, "up:H1"), false); len(ch) != 0 {
		t.Fatalf("re-cut of a down link changed %v", ch)
	}
	if ch := conn.SetLink(mustLink(t, g, "up:H1"), true); len(ch) != 0 {
		t.Fatalf("restore under a dark rack changed %v", ch)
	}

	// Restoring the fabric link rejoins R1, H1 and H2 at once.
	changed = conn.SetLink(mustLink(t, g, "fab:R1"), true)
	if len(changed) != 3 {
		t.Fatalf("restore fab:R1 changed %v, want R1+H1+H2", changed)
	}
	for _, h := range []string{"H1", "H2", "H3"} {
		if !conn.Reachable(mustNode(t, g, h)) {
			t.Fatalf("host %s unreachable after full heal", h)
		}
	}

	// The edge adjacency is the whole graph's lifeline.
	conn.SetLink(mustLink(t, g, "adj:edge"), false)
	for _, h := range []string{"H1", "H2", "H3"} {
		if conn.Reachable(mustNode(t, g, h)) {
			t.Fatalf("host %s reachable with the edge adjacency cut", h)
		}
	}
}

// TestPathLinks: the unique edge path of a tree graph lists the host
// uplink, the rack fabric link and the edge adjacency in order.
func TestPathLinks(t *testing.T) {
	topo := NewMedium(profile.OpenContrail3x().ClusterRoles, 3).WithDefaultLinks(10_000, 4)
	g, err := topo.Graph()
	if err != nil {
		t.Fatal(err)
	}
	path, err := g.PathLinks(mustNode(t, g, "H1"))
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for _, li := range path {
		ids = append(ids, g.Links[li].ID())
	}
	want := []string{"up:H1", "fab:R1", "adj:edge"}
	if !reflect.DeepEqual(ids, want) {
		t.Fatalf("path %v, want %v", ids, want)
	}
}

// meshTopology builds a 3-rack × 3-host layout with default links plus a
// redundant rack-to-rack cross link, so the graph has a cycle and the
// general (non-tree) incremental path gets exercised.
func meshTopology() *Topology {
	topo := &Topology{Name: "mesh", ClusterSize: 3}
	for r := 1; r <= 3; r++ {
		rack := Rack{Name: rackName(r)}
		for h := 1; h <= 3; h++ {
			rack.Hosts = append(rack.Hosts, Host{Name: hostName(r, h)})
		}
		topo.Racks = append(topo.Racks, rack)
	}
	topo.Links = DefaultLinks(topo, 10_000, 4)
	topo.Links = append(topo.Links, Link{
		Name: "x:R1R2", Kind: FabricLink, A: "R1", B: "R2", MTBF: 10_000, MTTR: 4,
	})
	return topo
}

func rackName(r int) string    { return "R" + string(rune('0'+r)) }
func hostName(r, h int) string { return "R" + string(rune('0'+r)) + "H" + string(rune('0'+h)) }

// TestConnectivityMatchesNaive: a long random flip sequence on a cyclic
// graph keeps the incremental tracker bit-identical to a full BFS after
// every event.
func TestConnectivityMatchesNaive(t *testing.T) {
	g, err := meshTopology().Graph()
	if err != nil {
		t.Fatal(err)
	}
	if g.isTree {
		t.Fatal("mesh topology should not compile as a tree")
	}
	fast := NewConnectivity(g)
	slow := NewConnectivity(g)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 5000; i++ {
		li := rng.Intn(len(g.Links))
		up := rng.Intn(2) == 0
		fast.SetLink(li, up)
		slow.linkDown[li] = !up
		slow.recomputeFull()
		if got, want := fast.Snapshot(), slow.Snapshot(); !reflect.DeepEqual(got, want) {
			t.Fatalf("event %d (link %s up=%v): incremental %v != naive %v",
				i, g.Links[li].ID(), up, got, want)
		}
	}
}

// TestConnectivityMatchesNaiveTree: same cross-check on the tree-shaped
// default fabric, which takes the subtree fast path.
func TestConnectivityMatchesNaiveTree(t *testing.T) {
	topo := meshTopology()
	topo.Links = DefaultLinks(topo, 10_000, 4) // drop the cross link
	g, err := topo.Graph()
	if err != nil {
		t.Fatal(err)
	}
	if !g.isTree {
		t.Fatal("default fabric should compile as a tree")
	}
	fast := NewConnectivity(g)
	slow := NewConnectivity(g)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		li := rng.Intn(len(g.Links))
		up := rng.Intn(2) == 0
		fast.SetLink(li, up)
		slow.linkDown[li] = !up
		slow.recomputeFull()
		if got, want := fast.Snapshot(), slow.Snapshot(); !reflect.DeepEqual(got, want) {
			t.Fatalf("event %d (link %s up=%v): incremental %v != naive %v",
				i, g.Links[li].ID(), up, got, want)
		}
	}
}

// TestValidateTypedErrors: each malformed layout fails with the right
// ErrorKind, so callers can branch on the class.
func TestValidateTypedErrors(t *testing.T) {
	roles := []profile.Role{"Control"}
	valid := func() *Topology {
		return &Topology{
			Name: "t", ClusterSize: 1, Roles: roles,
			Racks: []Rack{{Name: "R1", Hosts: []Host{{Name: "H1", VMs: []VM{
				{Name: "C1", Placements: []Placement{{Role: "Control", Node: 0}}},
			}}}}},
		}
	}
	cases := []struct {
		name string
		mut  func(*Topology)
		want ErrorKind
	}{
		{"even cluster", func(t *Topology) { t.ClusterSize = 2 }, ErrCluster},
		{"empty rack", func(t *Topology) { t.Racks = append(t.Racks, Rack{Name: "R2"}) }, ErrEmptyContainer},
		{"empty host", func(t *Topology) {
			t.Racks[0].Hosts = append(t.Racks[0].Hosts, Host{Name: "H2"})
		}, ErrEmptyContainer},
		{"node out of range", func(t *Topology) {
			t.Racks[0].Hosts[0].VMs[0].Placements[0].Node = 5
		}, ErrNodeRange},
		{"duplicate placement", func(t *Topology) {
			t.Racks[0].Hosts[0].VMs = append(t.Racks[0].Hosts[0].VMs,
				VM{Name: "C1b", Placements: []Placement{{Role: "Control", Node: 0}}})
		}, ErrDuplicatePlacement},
		{"missing placement", func(t *Topology) {
			t.Racks[0].Hosts[0].VMs[0].Placements = nil
		}, ErrMissingPlacement},
		{"duplicate VM", func(t *Topology) {
			t.Racks[0].Hosts[0].VMs = append(t.Racks[0].Hosts[0].VMs, VM{Name: "C1"})
		}, ErrDuplicateName},
		{"dangling link", func(t *Topology) {
			t.Links = []Link{{A: "H1", B: "nowhere"}}
		}, ErrDanglingLink},
		{"self-loop link", func(t *Topology) {
			t.Links = []Link{{A: "H1", B: "H1"}}
		}, ErrBadLink},
		{"duplicate link", func(t *Topology) {
			t.Links = []Link{{A: "H1", B: "R1"}, {A: "H1", B: "R1"}}
		}, ErrBadLink},
		{"negative rates", func(t *Topology) {
			t.Links = []Link{{A: "H1", B: "R1", MTBF: -1}}
		}, ErrBadLink},
		{"no repair", func(t *Topology) {
			t.Links = []Link{{A: "H1", B: "R1", MTBF: 100, MTTR: 0}}
		}, ErrBadLink},
		{"disconnected host", func(t *Topology) {
			// Only the edge adjacency: H1 has no route to anything.
			t.Links = []Link{{A: EdgeNode, B: FabricNode}}
		}, ErrDisconnected},
	}
	for _, tc := range cases {
		topo := valid()
		if err := topo.Validate(); err != nil {
			t.Fatalf("%s: baseline invalid: %v", tc.name, err)
		}
		tc.mut(topo)
		err := topo.Validate()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		var te *Error
		if !errors.As(err, &te) {
			t.Errorf("%s: untyped error %v", tc.name, err)
			continue
		}
		if te.Kind != tc.want {
			t.Errorf("%s: kind %v, want %v (%v)", tc.name, te.Kind, tc.want, err)
		}
	}
}

// TestJSONLinksRoundTrip: links survive ToJSON/FromJSON and unknown JSON
// fields are rejected.
func TestJSONLinksRoundTrip(t *testing.T) {
	topo := NewSmall(profile.OpenContrail3x().ClusterRoles, 3).WithDefaultLinks(8760, 6)
	data, err := ToJSON(topo)
	if err != nil {
		t.Fatal(err)
	}
	back, err := FromJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Links, topo.Links) {
		t.Fatalf("links changed across round trip:\n%v\nvs\n%v", topo.Links, back.Links)
	}
	if _, err := FromJSON([]byte(`{"name":"x","clusterSize":1,"roles":["Control"],"typo":1,"racks":[]}`)); err == nil {
		t.Fatal("unknown field accepted by strict decode")
	}
}
