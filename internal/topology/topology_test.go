package topology

import (
	"strings"
	"testing"

	"sdnavail/internal/profile"
)

var paperRoles = []profile.Role{profile.Config, profile.Control, profile.Analytics, profile.Database}

func TestSmallTopology(t *testing.T) {
	top := NewSmall(paperRoles, 3)
	if err := top.Validate(); err != nil {
		t.Fatalf("Small invalid: %v", err)
	}
	racks, hosts, vms := top.Counts()
	if racks != 1 || hosts != 3 || vms != 3 {
		t.Errorf("Small counts = (%d racks, %d hosts, %d vms), want (1, 3, 3)", racks, hosts, vms)
	}
	if !top.QuorumSharesRack() {
		t.Error("Small: the single rack must carry the quorum")
	}
	// All four roles of node 0 share the first VM.
	vm := top.Racks[0].Hosts[0].VMs[0]
	if len(vm.Placements) != 4 {
		t.Errorf("Small GCAD1 placements = %d, want 4", len(vm.Placements))
	}
}

func TestMediumTopology(t *testing.T) {
	top := NewMedium(paperRoles, 3)
	if err := top.Validate(); err != nil {
		t.Fatalf("Medium invalid: %v", err)
	}
	racks, hosts, vms := top.Counts()
	if racks != 2 || hosts != 3 || vms != 12 {
		t.Errorf("Medium counts = (%d racks, %d hosts, %d vms), want (2, 3, 12)", racks, hosts, vms)
	}
	// Hosts 1-2 in rack 1, host 3 alone in rack 2: quorum shares rack 1.
	if len(top.Racks[0].Hosts) != 2 || len(top.Racks[1].Hosts) != 1 {
		t.Errorf("Medium rack split = (%d, %d), want (2, 1)", len(top.Racks[0].Hosts), len(top.Racks[1].Hosts))
	}
	if !top.QuorumSharesRack() {
		t.Error("Medium: rack R1 must carry the quorum (the paper's S→M observation)")
	}
	// Each host carries one VM per role.
	for _, h := range append(top.Racks[0].Hosts, top.Racks[1].Hosts...) {
		if len(h.VMs) != 4 {
			t.Errorf("Medium host %s VMs = %d, want 4", h.Name, len(h.VMs))
		}
	}
}

func TestLargeTopology(t *testing.T) {
	top := NewLarge(paperRoles, 3)
	if err := top.Validate(); err != nil {
		t.Fatalf("Large invalid: %v", err)
	}
	racks, hosts, vms := top.Counts()
	if racks != 3 || hosts != 12 || vms != 12 {
		t.Errorf("Large counts = (%d racks, %d hosts, %d vms), want (3, 12, 12)", racks, hosts, vms)
	}
	if top.QuorumSharesRack() {
		t.Error("Large: no rack may carry a quorum")
	}
	// Rack i carries exactly node i's role instances.
	for i, rack := range top.Racks {
		for _, h := range rack.Hosts {
			if len(h.VMs) != 1 {
				t.Errorf("Large host %s VMs = %d, want 1", h.Name, len(h.VMs))
			}
			for _, vm := range h.VMs {
				for _, pl := range vm.Placements {
					if pl.Node != i {
						t.Errorf("Large rack %d contains %v", i, pl)
					}
				}
			}
		}
	}
}

func TestByKind(t *testing.T) {
	for _, k := range []Kind{Small, Medium, Large} {
		top, err := ByKind(k, paperRoles, 3)
		if err != nil || top.Kind != k {
			t.Errorf("ByKind(%v) = %v, %v", k, top, err)
		}
	}
	if _, err := ByKind(Custom, paperRoles, 3); err == nil {
		t.Error("ByKind(Custom) should fail")
	}
}

func TestGeneralizationToFiveNodes(t *testing.T) {
	for _, build := range []func([]profile.Role, int) *Topology{NewSmall, NewMedium, NewLarge} {
		top := build(paperRoles, 5)
		if err := top.Validate(); err != nil {
			t.Errorf("%s(5) invalid: %v", top.Name, err)
		}
	}
	top := NewLarge(paperRoles, 5)
	racks, hosts, _ := top.Counts()
	if racks != 5 || hosts != 20 {
		t.Errorf("Large(5) = %d racks %d hosts, want 5, 20", racks, hosts)
	}
	if top.QuorumSharesRack() {
		t.Error("Large(5): no rack may carry a quorum")
	}
}

func TestValidateCatchesProblems(t *testing.T) {
	top := NewSmall(paperRoles, 3)
	top.ClusterSize = 4
	if top.Validate() == nil {
		t.Error("even cluster size accepted")
	}

	top = NewSmall(paperRoles, 3)
	top.ClusterSize = 0
	if top.Validate() == nil {
		t.Error("zero cluster size accepted")
	}

	top = NewSmall(paperRoles, 3)
	top.Racks[0].Hosts[0].VMs[0].Placements = top.Racks[0].Hosts[0].VMs[0].Placements[:3]
	if top.Validate() == nil {
		t.Error("missing placement accepted")
	}

	top = NewSmall(paperRoles, 3)
	top.Racks[0].Hosts[0].VMs[0].Placements = append(top.Racks[0].Hosts[0].VMs[0].Placements,
		Placement{Role: profile.Config, Node: 1})
	if top.Validate() == nil {
		t.Error("duplicate placement accepted")
	}

	top = NewSmall(paperRoles, 3)
	top.Racks[0].Hosts[0].VMs[0].Placements[0].Node = 99
	if top.Validate() == nil {
		t.Error("out-of-range node accepted")
	}

	top = NewSmall(paperRoles, 3)
	top.Racks[0].Hosts[1].Name = top.Racks[0].Hosts[0].Name
	if top.Validate() == nil {
		t.Error("duplicate host name accepted")
	}

	top = NewSmall(paperRoles, 3)
	top.Racks[0].Hosts[1].VMs[0].Name = top.Racks[0].Hosts[0].VMs[0].Name
	if top.Validate() == nil {
		t.Error("duplicate VM name accepted")
	}

	top = NewMedium(paperRoles, 3)
	top.Racks[1].Name = top.Racks[0].Name
	if top.Validate() == nil {
		t.Error("duplicate rack name accepted")
	}
}

func TestLocate(t *testing.T) {
	top := NewLarge(paperRoles, 3)
	ri, hi, vi, err := top.Locate(Placement{Role: profile.Database, Node: 2})
	if err != nil {
		t.Fatalf("Locate: %v", err)
	}
	if ri != 2 {
		t.Errorf("Database/2 rack = %d, want 2", ri)
	}
	if hi != 3 || vi != 0 {
		t.Errorf("Database/2 host, vm = %d, %d; want 3, 0", hi, vi)
	}
	if _, _, _, err := top.Locate(Placement{Role: "Nope", Node: 0}); err == nil {
		t.Error("Locate of absent placement should fail")
	}
}

func TestStringRendering(t *testing.T) {
	top := NewMedium(paperRoles, 3)
	s := top.String()
	for _, want := range []string{"Medium", "R1", "R2", "H3", "Control/0"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q", want)
		}
	}
	if Small.String() != "Small" || Medium.String() != "Medium" || Large.String() != "Large" || Custom.String() != "Custom" {
		t.Error("Kind strings wrong")
	}
	if got := (Placement{Role: profile.Control, Node: 1}).String(); got != "Control/1" {
		t.Errorf("Placement.String = %q", got)
	}
}

func TestTopologyJSONRoundTrip(t *testing.T) {
	for _, build := range []func([]profile.Role, int) *Topology{NewSmall, NewMedium, NewLarge} {
		top := build(paperRoles, 3)
		data, err := ToJSON(top)
		if err != nil {
			t.Fatalf("%s: ToJSON: %v", top.Name, err)
		}
		back, err := FromJSON(data)
		if err != nil {
			t.Fatalf("%s: FromJSON: %v", top.Name, err)
		}
		if back.Kind != Custom {
			t.Errorf("%s: parsed kind = %v, want Custom", top.Name, back.Kind)
		}
		r1, h1, v1 := top.Counts()
		r2, h2, v2 := back.Counts()
		if r1 != r2 || h1 != h2 || v1 != v2 {
			t.Errorf("%s: counts changed: (%d,%d,%d) vs (%d,%d,%d)", top.Name, r1, h1, v1, r2, h2, v2)
		}
		if top.QuorumSharesRack() != back.QuorumSharesRack() {
			t.Errorf("%s: quorum-rack property changed", top.Name)
		}
	}
}

func TestTopologyFromJSONErrors(t *testing.T) {
	if _, err := FromJSON([]byte(`{broken`)); err == nil {
		t.Error("syntax error accepted")
	}
	// Valid JSON, invalid topology (missing placements).
	doc := `{"name":"x","clusterSize":3,"roles":["Config"],"racks":[]}`
	if _, err := FromJSON([]byte(doc)); err == nil {
		t.Error("incomplete topology accepted")
	}
}

func TestTopologyToJSONRejectsInvalid(t *testing.T) {
	top := NewSmall(paperRoles, 3)
	top.ClusterSize = 4
	if _, err := ToJSON(top); err == nil {
		t.Error("invalid topology serialized")
	}
}
