// Package sdnavail is an availability-modeling and fault-injection toolkit
// for distributed SDN controllers, reproducing and extending "Distributed
// Software Defined Networking Controller Failure Mode and Availability
// Analysis" (Reeser, Tesseyre, Callaway — ISPASS 2019).
//
// The toolkit has three layers:
//
//   - Analytic models (the paper's contribution): closed-form HW-centric
//     availability for the Small/Medium/Large reference deployment
//     topologies (paper equations 2-8) and SW-centric process-level models
//     for the 1S/2S/1L/2L options (equations 9-15), parameterized by a
//     controller Profile that encodes the paper's Tables I-III. Profiles
//     for OpenContrail 3.x and two illustrative alternates are built in;
//     any distributed controller can be described by populating a Profile.
//
//   - A Monte Carlo discrete-event simulator (the paper's stated future
//     work) that builds the full rack/host/VM/process hierarchy, drives
//     failure and repair cycles with supervisor semantics, and validates
//     the closed forms.
//
//   - A live in-process controller-cluster testbed with a chaos harness:
//     goroutine processes for every Table I process, a quorum store,
//     sequencer and event log for the Database role, a BGP-style control
//     mesh, vRouter agents with dual control connections and rediscovery,
//     and per-node-role supervisors with auto-restart. Fault-injection
//     scenarios replay the paper's section III failure narrative on
//     running code while probes measure observed availability.
//
// Quick start:
//
//	prof := sdnavail.OpenContrail3x()
//	model := sdnavail.NewModel(prof, sdnavail.Option2L)
//	cp, dp := model.Evaluate()
//	fmt.Printf("A_CP = %.7f (%.1f min/year)\n", cp, sdnavail.DowntimeMinutesPerYear(cp))
//	_ = dp
//
// The cmd directory provides four executables: availcalc (tables and
// closed-form results), availsim (Monte Carlo validation), figures
// (regenerate every paper figure and table), and chaosctl (live testbed
// scenarios). The examples directory holds runnable walkthroughs.
package sdnavail
