#!/usr/bin/env bash
# bench_availd.sh — closed-loop scaling benchmark for availd.
#
# Builds availd and the example client, boots a fleet on loopback —
#   one single-node instance          (baseline MC throughput)
#   four workers behind a coordinator (sharded fan-out)
#   one store-enabled instance        (cold/warm persistent cache)
# — then drives the client's -bench harness, which writes the
# BENCH_availd.json artifact (throughput, latency quantiles, warm/cold
# ratio, stream time-to-first-estimate).
#
# Environment:
#   BENCH_AVAILD_OUT   artifact path   (default: <repo>/BENCH_availd.json)
#   BENCH_AVAILD_PORT  first port used (default: 18180; seven are taken)
# Extra arguments are passed through to the client, e.g.
#   scripts/bench_availd.sh -bench-reps 2048 -bench-requests 8
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
OUT="${BENCH_AVAILD_OUT:-$ROOT/BENCH_availd.json}"
PORT="${BENCH_AVAILD_PORT:-18180}"
BIN="$(mktemp -d)"
STORE="$(mktemp -d)"
PIDS=()

cleanup() {
  local pid
  for pid in "${PIDS[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
  rm -rf "$BIN" "$STORE"
}
trap cleanup EXIT

echo "bench: building availd and availd-client"
go -C "$ROOT" build -o "$BIN/availd" ./cmd/availd
go -C "$ROOT" build -o "$BIN/availd-client" ./examples/availd-client

start() { # start <port> [extra availd flags...]
  local port=$1
  shift
  "$BIN/availd" -addr "127.0.0.1:$port" -timeout 2m "$@" \
    >"$BIN/availd-$port.log" 2>&1 &
  PIDS+=("$!")
}

wait_ready() { # wait_ready <port>
  local i
  for i in $(seq 1 50); do
    if curl -fsS "http://127.0.0.1:$1/readyz" >/dev/null 2>&1; then
      return 0
    fi
    sleep 0.2
  done
  echo "bench: availd on port $1 never became ready" >&2
  cat "$BIN/availd-$1.log" >&2 || true
  return 1
}

SINGLE=$PORT
W1=$((PORT + 1)) W2=$((PORT + 2)) W3=$((PORT + 3)) W4=$((PORT + 4))
COORD=$((PORT + 5))
STOREP=$((PORT + 6))

echo "bench: starting fleet (single :$SINGLE, workers :$W1-:$W4, coordinator :$COORD, store :$STOREP)"
start "$SINGLE"
for p in "$W1" "$W2" "$W3" "$W4"; do start "$p"; done
start "$COORD" -shard-workers \
  "http://127.0.0.1:$W1,http://127.0.0.1:$W2,http://127.0.0.1:$W3,http://127.0.0.1:$W4"
start "$STOREP" -store "$STORE"
for p in "$SINGLE" "$W1" "$W2" "$W3" "$W4" "$COORD" "$STOREP"; do wait_ready "$p"; done

"$BIN/availd-client" -bench \
  -base "http://127.0.0.1:$SINGLE" \
  -shard-base "http://127.0.0.1:$COORD" \
  -store-base "http://127.0.0.1:$STOREP" \
  -bench-out "$OUT" \
  -timeout 3m \
  "$@"

echo "bench: artifact at $OUT"
