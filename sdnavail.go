package sdnavail

import (
	"context"
	"time"

	"sdnavail/internal/analytic"
	"sdnavail/internal/chaos"
	"sdnavail/internal/cluster"
	"sdnavail/internal/experiments"
	"sdnavail/internal/markov"
	"sdnavail/internal/mc"
	"sdnavail/internal/profile"
	"sdnavail/internal/relmath"
	"sdnavail/internal/report"
	"sdnavail/internal/server"
	"sdnavail/internal/stats"
	"sdnavail/internal/sweep"
	"sdnavail/internal/telemetry"
	"sdnavail/internal/topology"
	"sdnavail/internal/vclock"
)

// The public API re-exports the library's core types as aliases so that
// downstream users import a single package. The internal packages remain
// the implementation; this file is the stable surface.

// ---- controller software description (paper Tables I-III) ----

// Profile describes a distributed SDN controller implementation: roles,
// processes, restart modes and quorum requirements.
type Profile = profile.Profile

// Process is one row of the paper's Table I.
type Process = profile.Process

// Role identifies a controller node type.
type Role = profile.Role

// RestartMode is Auto or Manual (Table II).
type RestartMode = profile.RestartMode

// Need is a quorum requirement class (Table III).
type Need = profile.Need

// Plane selects the SDN control plane or the host data plane.
type Plane = profile.Plane

// Re-exported enumeration values.
const (
	AutoRestart   = profile.AutoRestart
	ManualRestart = profile.ManualRestart

	NotRequired = profile.NotRequired
	OneOf       = profile.OneOf
	Majority    = profile.Majority

	ControlPlane = profile.ControlPlane
	DataPlane    = profile.DataPlane
)

// OpenContrail3x returns the paper's reference controller profile.
func OpenContrail3x() *Profile { return profile.OpenContrail3x() }

// ODLLike and ONOSLike return illustrative alternate controller profiles,
// demonstrating the table-driven extensibility the paper claims.
func ODLLike() *Profile  { return profile.ODLLike() }
func ONOSLike() *Profile { return profile.ONOSLike() }

// ---- deployment topologies (paper Fig. 2) ----

// Topology is a physical deployment layout: racks ⊃ hosts ⊃ VMs ⊃ roles.
type Topology = topology.Topology

// TopologyKind tags the reference layout family.
type TopologyKind = topology.Kind

// Reference topology kinds.
const (
	SmallTopology  = topology.Small
	MediumTopology = topology.Medium
	LargeTopology  = topology.Large
)

// NewSmallTopology, NewMediumTopology and NewLargeTopology build the
// paper's reference layouts for the given roles and 2N+1 cluster size.
func NewSmallTopology(roles []Role, clusterSize int) *Topology {
	return topology.NewSmall(roles, clusterSize)
}
func NewMediumTopology(roles []Role, clusterSize int) *Topology {
	return topology.NewMedium(roles, clusterSize)
}
func NewLargeTopology(roles []Role, clusterSize int) *Topology {
	return topology.NewLarge(roles, clusterSize)
}

// ---- analytic models (paper §V and §VI) ----

// Params carries the model's availability parameters.
type Params = analytic.Params

// HWModel is the HW-centric (role-atomic) model of §V.
type HWModel = analytic.HWModel

// Model is the SW-centric (process-level) model of §VI.
type Model = analytic.Model

// Option pairs a topology kind with a supervisor scenario.
type Option = analytic.Option

// Scenario selects the supervisor mode of operation.
type Scenario = analytic.Scenario

// MaintenanceLevel is a host maintenance contract class (§V.D).
type MaintenanceLevel = analytic.MaintenanceLevel

// The paper's analysis options and scenarios.
var (
	Option1S = analytic.Option1S
	Option2S = analytic.Option2S
	Option1L = analytic.Option1L
	Option2L = analytic.Option2L
)

const (
	SupervisorNotRequired = analytic.SupervisorNotRequired
	SupervisorRequired    = analytic.SupervisorRequired

	SameDay         = analytic.SameDay
	NextDay         = analytic.NextDay
	NextBusinessDay = analytic.NextBusinessDay
)

// DefaultParams returns the paper's example parameters.
func DefaultParams() Params { return analytic.Defaults() }

// NewHWModel returns the paper's reference HW-centric model (3 nodes,
// three 1-of-3 roles, one quorum role).
func NewHWModel() HWModel { return analytic.NewHWModel() }

// NewModel returns a SW-centric model over the profile and option with
// default parameters and a 3-node cluster.
func NewModel(prof *Profile, opt Option) *Model { return analytic.NewModel(prof, opt) }

// AnalysisOptions lists the paper's four SW-centric options (1S, 2S, 1L,
// 2L).
func AnalysisOptions() []Option { return analytic.Options() }

// ---- reliability math ----

// KofN returns the paper's equation (1): the availability of an m-of-n
// block of identical elements with availability alpha.
func KofN(m, n int, alpha float64) float64 { return relmath.KofN(m, n, alpha) }

// Availability returns MTBF/(MTBF+MTTR).
func Availability(mtbf, mttr float64) float64 { return relmath.Availability(mtbf, mttr) }

// DowntimeMinutesPerYear converts availability to expected yearly downtime.
func DowntimeMinutesPerYear(a float64) float64 { return relmath.DowntimeMinutesPerYear(a) }

// Nines returns -log10(1-a), the "number of nines".
func Nines(a float64) float64 { return relmath.Nines(a) }

// Block is a reliability-block-diagram node for ad-hoc structures; see
// Unit, Const, InSeries, InParallel, Vote and Replicate.
type Block = relmath.Block

// Env supplies named availabilities to Block.Eval.
type Env = relmath.Env

// RBD constructors, re-exported from the reliability math substrate.
func Unit(name string) *Block                  { return relmath.Unit(name) }
func Const(a float64) *Block                   { return relmath.Const(a) }
func InSeries(children ...*Block) *Block       { return relmath.InSeries(children...) }
func InParallel(children ...*Block) *Block     { return relmath.InParallel(children...) }
func Vote(need int, children ...*Block) *Block { return relmath.Vote(need, children...) }
func Replicate(need, n int, child *Block) *Block {
	return relmath.Replicate(need, n, child)
}

// ---- Monte Carlo simulation (paper §VII future work) ----

// SimConfig parameterizes the discrete-event availability simulator.
type SimConfig = mc.Config

// SimResult is one replication's measurements.
type SimResult = mc.Result

// SimEstimate aggregates replications with confidence intervals.
type SimEstimate = mc.Estimate

// Interval is a confidence interval.
type Interval = stats.Interval

// NewSimConfig derives a simulator configuration from analytic parameters.
func NewSimConfig(prof *Profile, topo *Topology, sc Scenario, p Params) SimConfig {
	return mc.NewConfig(prof, topo, sc, p)
}

// Simulate runs independent replications and returns availability
// estimates at the given confidence level.
func Simulate(cfg SimConfig, replications int, level float64) (SimEstimate, error) {
	return mc.Run(cfg, replications, level)
}

// ---- live testbed and chaos harness ----

// Cluster is the live in-process controller testbed.
type Cluster = cluster.Cluster

// ClusterConfig assembles a testbed.
type ClusterConfig = cluster.Config

// ClusterTiming holds the testbed's scaled operational delays.
type ClusterTiming = cluster.Timing

// ClusterSupervision configures the supervisors' restart policy: retry
// budget, exponential backoff, quick-fail window, and flapping detection
// (supervisord semantics, scaled like ClusterTiming).
type ClusterSupervision = cluster.Supervision

// ClusterDegradation configures the testbed's graceful-degradation knobs:
// the vRouter headless hold and per-route staleness bound, and the revived
// store replica catch-up latency. The zero value keeps the strict
// flush-immediately / reconcile-instantly behaviour.
type ClusterDegradation = cluster.Degradation

// ClusterHealth is the coarse cluster health level (Healthy, Degraded or
// Critical).
type ClusterHealth = cluster.Health

// ClusterHealthReport is a point-in-time per-subsystem health snapshot
// from Cluster.Health().
type ClusterHealthReport = cluster.HealthReport

// Cluster health levels.
const (
	ClusterHealthy  = cluster.Healthy
	ClusterDegraded = cluster.Degraded
	ClusterCritical = cluster.Critical
)

// NewCluster assembles a testbed cluster (call Start, defer Stop).
func NewCluster(cfg ClusterConfig) (*Cluster, error) { return cluster.New(cfg) }

// ChaosAction is one scripted injection step.
type ChaosAction = chaos.Action

// ChaosReport summarizes an experiment's observed availability.
type ChaosReport = chaos.Report

// ChaosCampaign is a randomized fault-injection experiment.
type ChaosCampaign = chaos.Campaign

// ChaosStep constructs a scripted action.
func ChaosStep(after time.Duration, name string, do func(c *Cluster) error) ChaosAction {
	return chaos.Step(after, name, do)
}

// RunScenario executes a scripted injection sequence while probing.
func RunScenario(c *Cluster, actions []ChaosAction, settle, probeEvery, probeTimeout time.Duration) (ChaosReport, error) {
	return chaos.RunScenario(c, actions, settle, probeEvery, probeTimeout)
}

// SectionIIIScenario returns the paper's section III control failure
// narrative as a scripted scenario.
func SectionIIIScenario(step time.Duration) []ChaosAction { return chaos.SectionIII(step) }

// FlakyProcess is a fault injector that crash-loops one process, driving
// the supervision ladder (backoff, retry budget, FATAL).
type FlakyProcess = chaos.FlakyProcess

// CrashLoopScenario crash-loops a supervised process until its supervisor
// gives up (FATAL), then recovers it with a manual restart.
func CrashLoopScenario(role string, node int, name string, step time.Duration) []ChaosAction {
	return chaos.CrashLoop(role, node, name, step)
}

// HeadlessScenario exercises the headless vRouter hold: a total control
// outage shorter than the hold is ridden out on stale forwarding state, a
// longer one flushes. Build the cluster with ClusterDegradation
// .HeadlessHold between step and 3*step.
func HeadlessScenario(step time.Duration) []ChaosAction { return chaos.Headless(step) }

// StaleReadScenario exercises the deferred replica catch-up window after a
// Cassandra (Config) replica revival. Build the cluster with
// ClusterDegradation.ReplicaCatchUp > 0.
func StaleReadScenario(step time.Duration) []ChaosAction { return chaos.StaleRead(step) }

// ---- RAFT leadership, gray failures and the scenario DSL ----

// ClusterRaft tunes the quorum stores' RAFT leadership behaviour via
// ClusterConfig.Raft: randomized election timeouts, the heartbeat period
// and the gray-leader detection budget. The zero value keeps instant
// (synchronous) leadership.
type ClusterRaft = cluster.RaftConfig

// RaftEvent is one leadership transition recorded by a quorum store
// (leader lost, split vote, elected, gray leader detected).
type RaftEvent = cluster.RaftEvent

// LeaderCrashScenario crashes the config-store RAFT leader replica and
// lets it rejoin through the catch-up window.
func LeaderCrashScenario(step time.Duration) []ChaosAction { return chaos.LeaderCrash(step) }

// GrayLeaderScenario injects a gray failure: the config-store leader
// keeps its lease but serves corrupted reads until the detector deposes
// it (timed mode with ClusterRaft.GrayDetect) or the flags are cleared.
func GrayLeaderScenario(step time.Duration) []ChaosAction { return chaos.GrayLeader(step) }

// StaleLeaderLeaseScenario partitions the config-store leader away from
// the majority so it holds a lease it can no longer honor, then heals.
func StaleLeaderLeaseScenario(step time.Duration) []ChaosAction {
	return chaos.StaleLeaderLease(step)
}

// AckDropWritesScenario arms Byzantine followers that acknowledge writes
// without persisting them, then kills the honest leader: acknowledged
// data is silently lost — downtime the binary up/down model cannot see.
func AckDropWritesScenario(step time.Duration) []ChaosAction { return chaos.AckDropWrites(step) }

// ScenarioSpec is a declarative chaos scenario parsed from JSON: named,
// schema-validated steps compiled into executable actions. (The name
// avoids colliding with Scenario, the analytic supervisor mode.)
type ScenarioSpec = chaos.ScenarioSpec

// ScenarioStepSpec is one declarative step of a ScenarioSpec.
type ScenarioStepSpec = chaos.StepSpec

// ScenarioValidationError pinpoints the step and field of an invalid
// scenario document.
type ScenarioValidationError = chaos.ValidationError

// ParseScenarioSpec parses and validates a declarative JSON scenario.
func ParseScenarioSpec(data []byte) (*ScenarioSpec, error) { return chaos.ParseScenarioSpec(data) }

// RunScenarioSpec compiles a declarative scenario and executes it against
// the cluster while probing.
func RunScenarioSpec(c *Cluster, spec *ScenarioSpec, probeEvery, probeTimeout time.Duration) (ChaosReport, error) {
	return chaos.RunSpec(c, spec, probeEvery, probeTimeout)
}

// ---- frequency-duration and weak-link analysis (extensions) ----

// RepairTimes carries mean-time-to-restore assumptions for turning
// availabilities into failure rates.
type RepairTimes = analytic.RepairTimes

// OutageEstimate is the frequency-duration view of a plane: how often
// outages begin and how long they last, not just the downtime total.
type OutageEstimate = analytic.OutageEstimate

// ImportanceEntry ranks a parameter class as a weak link (Birnbaum
// importance, downtime share, improvement potential).
type ImportanceEntry = analytic.ImportanceEntry

// PlaneMetric selects the plane for importance analysis.
type PlaneMetric = analytic.PlaneMetric

// Plane metrics for Model.Importance.
const (
	CPMetric = analytic.CPMetric
	DPMetric = analytic.DPMetric
)

// DefaultRepairTimes returns the paper-aligned repair times (R = 0.1 h,
// R_S = 1 h, VM 1 h, host 4 h, rack 48 h).
func DefaultRepairTimes() RepairTimes { return analytic.DefaultRepairTimes() }

// ControlFailoverImpact quantifies the transient data-plane impact of
// simultaneous control-process failures that the paper's §III analysis
// assumes negligible. See analytic.ControlFailoverImpact.
func ControlFailoverImpact(p Params, clusterSize int, mttr, rediscoverHours float64) (addedUnavailability, eventsPerYear float64, err error) {
	return analytic.ControlFailoverImpact(p, clusterSize, mttr, rediscoverHours)
}

// KofNRepairable solves the repairable k-of-n birth-death chain exactly:
// steady-state availability, outage frequency per hour, and mean outage
// duration in hours, for per-component failure rate lambda and repair
// rate mu.
func KofNRepairable(m, n int, lambda, mu float64) (avail, freqPerHour, meanDownHours float64, err error) {
	return markov.KofNAvailability(m, n, lambda, mu)
}

// KofNMissionReliability returns the probability that a repairable k-of-n
// group, starting all-up, suffers no availability loss during t hours —
// the "no outage this year" view the steady-state models cannot express.
func KofNMissionReliability(m, n int, lambda, mu, t float64) (float64, error) {
	return markov.KofNMissionReliability(m, n, lambda, mu, t)
}

// SLAMissProbability estimates, from simulation results run with
// SimConfig.WindowHours set, the probability that a window's control-plane
// downtime exceeds the threshold in minutes.
func SLAMissProbability(results []SimResult, thresholdMinutes float64) (float64, error) {
	return mc.SLAMissProbability(results, thresholdMinutes)
}

// OutageDurationSummary aggregates every simulated control-plane outage
// into order statistics (hours).
func OutageDurationSummary(results []SimResult) stats.Summary {
	return mc.OutageDurationSummary(results)
}

// Summary holds order statistics of a sample set.
type Summary = stats.Summary

// ExactModel evaluates the SW-centric availability of an arbitrary custom
// topology by exact shared-hardware state enumeration — placements the
// Small/Medium/Large closed forms cannot express.
type ExactModel = analytic.ExactModel

// NewExactModel returns an exact model over any topology with default
// parameters.
func NewExactModel(prof *Profile, topo *Topology, sc Scenario) *ExactModel {
	return analytic.NewExactModel(prof, topo, sc)
}

// Rack, Host, TopologyVM and Placement are the building blocks for custom
// topologies evaluated by ExactModel, the simulator, or the live testbed.
type (
	Rack       = topology.Rack
	Host       = topology.Host
	TopologyVM = topology.VM
	Placement  = topology.Placement
)

// ProfileToJSON and ProfileFromJSON serialize controller profiles, so new
// implementations can be described declaratively and fed to every model
// (see cmd/availcalc -profile-file).
func ProfileToJSON(p *Profile) ([]byte, error)      { return profile.ToJSON(p) }
func ProfileFromJSON(data []byte) (*Profile, error) { return profile.FromJSON(data) }

// TopologyToJSON and TopologyFromJSON serialize deployment layouts, so
// custom placements can be priced declaratively (see cmd/availcalc
// -topology-file).
func TopologyToJSON(t *Topology) ([]byte, error)      { return topology.ToJSON(t) }
func TopologyFromJSON(data []byte) (*Topology, error) { return topology.FromJSON(data) }

// ---- failure-aware network graph ----

// NetworkLink is one failure-prone edge of a topology's network graph:
// a host uplink, a rack-to-core fabric link, or the service-edge
// adjacency. MTBF == 0 declares the link perfect; a topology with no
// links at all keeps the original containment-tree semantics exactly.
type NetworkLink = topology.Link

// NetworkLinkKind types a link by its role in the fabric.
type NetworkLinkKind = topology.LinkKind

// Re-exported link kinds.
const (
	UplinkLink    = topology.Uplink
	FabricLink    = topology.FabricLink
	AdjacencyLink = topology.Adjacency
)

// DefaultNetworkLinks builds the canonical fabric for a containment
// tree: one uplink per host ("up:<host>"), one fabric link per rack
// ("fab:<rack>") and one edge adjacency ("adj:edge"), all with the same
// MTBF/MTTR hours.
func DefaultNetworkLinks(t *Topology, mtbf, mttr float64) []NetworkLink {
	return topology.DefaultLinks(t, mtbf, mttr)
}

// ---- controller-placement sweeps ----

// SweepOptions tunes the adaptive sequential-stopping Monte Carlo
// engine: replicate each point until its CP confidence half-width meets
// CITarget, bounded by [MinReps, MaxReps].
type SweepOptions = sweep.Options

// PlacementSpec describes a controller-placement sweep: a rack/host
// slot grid, a controller count, optional link failure parameters, and
// a candidate cap applied by deterministic subsampling.
type PlacementSpec = sweep.PlacementSpec

// PlacementCandidate is one enumerated placement with its materialized
// topology.
type PlacementCandidate = sweep.Candidate

// PlacementResult scores one candidate: closed-form exact-model plane
// availabilities plus the adaptive Monte Carlo cross-check.
type PlacementResult = sweep.PlacementResult

// PlacementSweep is a completed sweep, ranked best-first by analytic
// control-plane availability.
type PlacementSweep = sweep.PlacementSweep

// RunPlacement enumerates the spec's candidate placements, scores each
// with the exact model and cross-checks each with the adaptive Monte
// Carlo engine.
func RunPlacement(spec PlacementSpec, opt SweepOptions) (*PlacementSweep, error) {
	return sweep.RunPlacement(spec, opt)
}

// RunPlacementContext is RunPlacement with a deadline: when ctx expires
// every candidate keeps its analytic score and reports the Monte Carlo
// replications that completed, flagged Truncated.
func RunPlacementContext(ctx context.Context, spec PlacementSpec, opt SweepOptions) (*PlacementSweep, error) {
	return sweep.RunPlacementContext(ctx, spec, opt)
}

// Operator is the remediation automation of the paper's §VII: it watches
// the live testbed and manually restarts processes that stay failed past
// its response time.
type Operator = chaos.Operator

// NewOperator returns an operator bot with the given response time; call
// Start with a running cluster and Stop when done.
func NewOperator(responseTime time.Duration) *Operator { return chaos.NewOperator(responseTime) }

// ---- virtual time and long-horizon soak validation ----

// Clock abstracts time for the testbed and chaos harness. The default
// RealClock passes through to the runtime; a FakeClock makes every
// scenario deterministic and lets simulated months run in wall-clock
// seconds. The Monte Carlo simulator is unaffected: it keeps its own
// discrete-event clock and never sleeps.
type Clock = vclock.Clock

// RealClock is the pass-through wall clock (the ClusterConfig default).
type RealClock = vclock.Real

// FakeClock is a deterministic virtual clock: it advances to the next
// pending deadline whenever every registered goroutine is parked in a
// clock-aware wait, so timed behaviour is exact and repeatable.
type FakeClock = vclock.Fake

// NewFakeClock returns a FakeClock starting at the given instant.
func NewFakeClock(start time.Time) *FakeClock { return vclock.NewFake(start) }

// SoakConfig parameterizes a long-horizon soak of the live testbed under
// virtual time: simulated hours of MTBF/MTTR-driven process failures with
// supervisors and an operator model performing the repairs.
type SoakConfig = chaos.SoakConfig

// SoakResult carries the soak's observed availability report and fault
// counts, plus the resolved configuration for mirroring into the
// simulator and closed forms.
type SoakResult = chaos.SoakResult

// RunSoak executes a fake-clocked soak of the live cluster.
func RunSoak(sc SoakConfig) (SoakResult, error) { return chaos.RunSoak(sc) }

// ---- telemetry: metrics, trace and downtime attribution ----

// Telemetry aggregates the observability layer the testbed, chaos harness
// and Monte Carlo simulator share: a metrics registry, a structured trace
// of state-transition events, and the downtime-attribution ledger. Attach
// one via ClusterConfig.Telemetry or SoakConfig.Telemetry; a nil aggregate
// disables collection at the cost of one nil check per state change.
type Telemetry = telemetry.Telemetry

// NewTelemetry returns an enabled telemetry aggregate.
func NewTelemetry() *Telemetry { return telemetry.New() }

// TraceEvent is one state-transition record in the telemetry trace.
type TraceEvent = telemetry.Event

// Attribution is one plane's per-failure-mode downtime table in the
// paper's Section IV style: total downtime split across the failure modes
// blamed for each unavailable interval.
type Attribution = telemetry.Attribution

// ModeShare is one failure mode's slice of a plane's downtime.
type ModeShare = telemetry.ModeShare

// RecoveryTracker collects recovery-time samples by kind (elections,
// replica catch-ups, gray-leader detections); reports render the
// distributions next to availability via Telemetry.Recovery.
type RecoveryTracker = telemetry.Recovery

// SimulateContext is Simulate with a deadline: when ctx expires, the run
// stops at its next cancellation check and returns the partial estimate
// with honest confidence intervals, flagged SimEstimate.Truncated —
// a deadlined what-if query gets its partial answer, not an error.
func SimulateContext(ctx context.Context, cfg SimConfig, replications int, level float64) (SimEstimate, error) {
	return mc.RunContext(ctx, cfg, replications, level)
}

// RunSoakContext is RunSoak with a deadline: a cancelled soak finalizes
// every aggregate at the virtual hours actually covered and reports
// SoakResult.Truncated — a clean partial result, not a torn one.
func RunSoakContext(ctx context.Context, sc SoakConfig) (SoakResult, error) {
	return chaos.RunSoakContext(ctx, sc)
}

// ---- rare-event acceleration (deep availability tails) ----

// RareEventConfig parameterizes the simulator's rare-event acceleration
// layer via SimConfig.Rare: forced-failure biasing per entity kind and
// multilevel importance splitting, both corrected by exact likelihood
// ratios so the unavailability estimator stays unbiased. The zero value
// disables the layer; the simulator is then bit-identical to the plain
// event loop.
type RareEventConfig = mc.RareEventConfig

// RareConfigError is the typed validation error for rare-event
// configurations.
type RareConfigError = mc.RareConfigError

// WeightedAccumulator folds likelihood-ratio-weighted samples: weighted
// mean, Kish effective sample size, and confidence intervals over the
// per-replication estimates.
type WeightedAccumulator = stats.WeightedAccumulator

// RelativeError returns HalfWide/|Mean| of an interval — the scale-free
// precision measure rare-event stopping rules use (+Inf at mean zero).
func RelativeError(ci Interval) float64 { return stats.RelativeError(ci) }

// AutoRareSchedule selects a biasing schedule for the configuration:
// forcing factors sized to the horizon's likelihood-ratio drift budget
// and splitting levels derived from the quorum min-cut. Configurations
// whose tail is easy come back with weaker factors, degrading gracefully
// toward the identity (a disabled schedule).
func AutoRareSchedule(cfg SimConfig) RareEventConfig { return sweep.AutoRare(cfg) }

// KofNExpectedDownTime solves the repairable k-of-n birth-death chain's
// expected downtime over [0, t] exactly (uniformization), starting
// all-up — the transient anchor the rare-event estimator is proven
// unbiased against.
func KofNExpectedDownTime(m, n int, lambda, mu, t float64) (float64, error) {
	return markov.KofNExpectedDownTime(m, n, lambda, mu, t)
}

// ReportTable is a rendered result table (Text, CSV, Markdown).
type ReportTable = report.Table

// TailRow is one deep-tail estimate in a tail-availability table.
type TailRow = report.TailRow

// TailAvailabilityTable renders deep-tail rows: unavailability with its
// nines, relative error, effective sample size, and the extrapolated
// replication-count speedup over naive Monte Carlo.
func TailAvailabilityTable(title string, rows []TailRow) ReportTable {
	return report.TailTable(title, rows)
}

// UnavailabilityNines converts an unavailability into nines of
// availability (1e-9 → 9).
func UnavailabilityNines(u float64) float64 { return report.Nines(u) }

// NaiveTailReplications extrapolates the replication count naive Monte
// Carlo would need for relative error relErr at normal quantile z, given
// the probability hitProb that one naive replication observes any
// downtime (SimEstimate.RareHitProb).
func NaiveTailReplications(hitProb, relErr, z float64) float64 {
	return report.NaiveReplications(hitProb, relErr, z)
}

// TailPoint is one labelled deep-tail configuration for RunTailStudy.
type TailPoint = experiments.TailPoint

// TailSweepResult is one tail-study point's outcome (a sweep result).
type TailSweepResult = sweep.Result

// RunTailStudy estimates each point's deep-tail CP unavailability with
// the rare-event engine (auto-selecting a biasing schedule for points
// without one), stopping at the options' relative-error target, and
// renders the tail-availability table with the naive-MC speedup.
func RunTailStudy(points []TailPoint, opt SweepOptions) ([]TailSweepResult, ReportTable, error) {
	return experiments.TailStudy(points, opt)
}

// RunTailStudyContext is RunTailStudy under a cancellable context.
func RunTailStudyContext(ctx context.Context, points []TailPoint, opt SweepOptions) ([]TailSweepResult, ReportTable, error) {
	return experiments.TailStudyContext(ctx, points, opt)
}

// DeepTailPlacementPoints builds the nine-nines placement comparison:
// the most rack-concentrated and the most spread placements of the given
// controller count at reference-grade parameters, ready for RunTailStudy.
func DeepTailPlacementPoints(controllers int, horizon float64, seed int64) ([]TailPoint, error) {
	return experiments.DeepTailPlacementPoints(controllers, horizon, seed)
}

// ---- resident availability service (availd) ----

// Server is the resident availability service behind cmd/availd: analytic
// evaluation, Monte Carlo what-ifs and live soaks as HTTP endpoints, with
// bounded admission (explicit 429 load shedding), per-request deadlines
// answering truncated partial estimates, per-request panic isolation,
// memoized analytic evaluation, Prometheus-format metrics, and graceful
// drain. Embed it via ServerConfig + NewServer, or mount
// Server.Handler() on an existing mux.
type Server = server.Server

// ServerConfig parameterizes the service; zero fields select defaults.
type ServerConfig = server.Config

// NewServer builds a service (call Listen then Serve, or mount Handler).
func NewServer(cfg ServerConfig) (*Server, error) { return server.New(cfg) }
