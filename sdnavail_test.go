package sdnavail_test

import (
	"math"
	"testing"
	"time"

	"sdnavail"
)

// TestPublicAPIQuickstart exercises the doc.go quick-start path.
func TestPublicAPIQuickstart(t *testing.T) {
	prof := sdnavail.OpenContrail3x()
	model := sdnavail.NewModel(prof, sdnavail.Option2L)
	cp, dp := model.Evaluate()
	if cp <= 0.99999 || cp >= 1 {
		t.Errorf("A_CP = %.8f implausible", cp)
	}
	if dp <= 0.999 || dp >= 1 {
		t.Errorf("A_DP = %.8f implausible", dp)
	}
	if dt := sdnavail.DowntimeMinutesPerYear(cp); math.Abs(dt-1.4) > 0.4 {
		t.Errorf("2L CP downtime = %.2f m/y, want ≈1.4", dt)
	}
}

func TestPublicAPIHWModel(t *testing.T) {
	m := sdnavail.NewHWModel()
	p := sdnavail.DefaultParams()
	if a := m.Small(p); math.Abs(a-0.999989) > 1.5e-6 {
		t.Errorf("Small = %.7f", a)
	}
	if math.Abs(sdnavail.KofN(2, 3, 0.9)-(3*0.81-2*0.729)) > 1e-12 {
		t.Error("KofN re-export broken")
	}
	if math.Abs(sdnavail.Availability(5000, 0.1)-0.99998) > 1e-6 {
		t.Error("Availability re-export broken")
	}
	if math.Abs(sdnavail.Nines(0.999)-3) > 1e-9 {
		t.Error("Nines re-export broken")
	}
}

func TestPublicAPIBlocks(t *testing.T) {
	node := sdnavail.InSeries(sdnavail.Unit("role"), sdnavail.Unit("host"))
	system := sdnavail.InSeries(sdnavail.Replicate(2, 3, node), sdnavail.Const(0.99999))
	a, err := system.Eval(sdnavail.Env{"role": 0.9995, "host": 0.9999})
	if err != nil {
		t.Fatal(err)
	}
	want := sdnavail.KofN(2, 3, 0.9995*0.9999) * 0.99999
	if math.Abs(a-want) > 1e-12 {
		t.Errorf("block eval = %.9f, want %.9f", a, want)
	}
	p := sdnavail.InParallel(sdnavail.Const(0.9), sdnavail.Const(0.9))
	if v := p.MustEval(nil); math.Abs(v-0.99) > 1e-12 {
		t.Errorf("parallel = %g", v)
	}
	v3 := sdnavail.Vote(1, sdnavail.Const(0.5), sdnavail.Const(0.5))
	if v := v3.MustEval(nil); math.Abs(v-0.75) > 1e-12 {
		t.Errorf("vote = %g", v)
	}
}

func TestPublicAPITopologies(t *testing.T) {
	prof := sdnavail.OpenContrail3x()
	for _, topo := range []*sdnavail.Topology{
		sdnavail.NewSmallTopology(prof.ClusterRoles, 3),
		sdnavail.NewMediumTopology(prof.ClusterRoles, 3),
		sdnavail.NewLargeTopology(prof.ClusterRoles, 3),
	} {
		if err := topo.Validate(); err != nil {
			t.Errorf("%s: %v", topo.Name, err)
		}
	}
}

func TestPublicAPISimulation(t *testing.T) {
	prof := sdnavail.OpenContrail3x()
	topo := sdnavail.NewSmallTopology(prof.ClusterRoles, 3)
	p := sdnavail.Params{AC: 0.99, AV: 0.999, AH: 0.999, AR: 0.999, A: 0.998, AS: 0.99}
	cfg := sdnavail.NewSimConfig(prof, topo, sdnavail.SupervisorRequired, p)
	cfg.Horizon = 3e4
	est, err := sdnavail.Simulate(cfg, 2, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if est.CP.Mean <= 0 || est.CP.Mean > 1 {
		t.Errorf("simulated CP = %v", est.CP)
	}
}

func TestPublicAPICluster(t *testing.T) {
	prof := sdnavail.OpenContrail3x()
	topo := sdnavail.NewSmallTopology(prof.ClusterRoles, 3)
	c, err := sdnavail.NewCluster(sdnavail.ClusterConfig{
		Profile: prof, Topology: topo, ComputeHosts: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	if err := c.ProbeCP(5 * time.Second); err != nil {
		t.Errorf("CP probe: %v", err)
	}
	actions := []sdnavail.ChaosAction{
		sdnavail.ChaosStep(0, "kill one control", func(c *sdnavail.Cluster) error {
			return c.KillProcess("Control", 0, "control")
		}),
	}
	rep, err := sdnavail.RunScenario(c, actions, 100*time.Millisecond, 5*time.Millisecond, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Samples) == 0 {
		t.Error("no samples")
	}
	if len(sdnavail.SectionIIIScenario(time.Millisecond)) != 5 {
		t.Error("SectionIIIScenario should have 5 actions")
	}
}

func TestPublicAPIProfilesAndOptions(t *testing.T) {
	if len(sdnavail.AnalysisOptions()) != 4 {
		t.Error("AnalysisOptions should list 4 options")
	}
	for _, prof := range []*sdnavail.Profile{sdnavail.ODLLike(), sdnavail.ONOSLike()} {
		if err := prof.Validate(); err != nil {
			t.Errorf("%s: %v", prof.Name, err)
		}
	}
	p := sdnavail.DefaultParams().WithMaintenance(sdnavail.NextBusinessDay)
	if p.AH >= sdnavail.DefaultParams().AH {
		t.Error("NBD should degrade A_H")
	}
}

func TestPublicAPISerialization(t *testing.T) {
	prof := sdnavail.OpenContrail3x()
	pdata, err := sdnavail.ProfileToJSON(prof)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sdnavail.ProfileFromJSON(pdata); err != nil {
		t.Fatal(err)
	}
	topo := sdnavail.NewMediumTopology(prof.ClusterRoles, 3)
	tdata, err := sdnavail.TopologyToJSON(topo)
	if err != nil {
		t.Fatal(err)
	}
	back, err := sdnavail.TopologyFromJSON(tdata)
	if err != nil {
		t.Fatal(err)
	}
	m := sdnavail.NewExactModel(prof, back, sdnavail.SupervisorRequired)
	cp, err := m.ControlPlane()
	if err != nil {
		t.Fatal(err)
	}
	closed := sdnavail.NewModel(prof, sdnavail.Option{Kind: sdnavail.MediumTopology, Scenario: sdnavail.SupervisorRequired})
	if want := closed.ControlPlane(); math.Abs(cp-want) > 1e-12 {
		t.Errorf("exact over JSON round trip %.15f vs closed %.15f", cp, want)
	}
}

func TestPublicAPIOperator(t *testing.T) {
	prof := sdnavail.OpenContrail3x()
	topo := sdnavail.NewSmallTopology(prof.ClusterRoles, 3)
	c, err := sdnavail.NewCluster(sdnavail.ClusterConfig{Profile: prof, Topology: topo, ComputeHosts: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	op := sdnavail.NewOperator(15 * time.Millisecond)
	if err := op.Start(c); err != nil {
		t.Fatal(err)
	}
	defer op.Stop()
	if err := c.KillProcess("Database", 1, "kafka"); err != nil {
		t.Fatal(err)
	}
	if !c.WaitUntil(5*time.Second, func() bool { return c.Alive("Database", 1, "kafka") }) {
		t.Fatal("operator did not heal the manual process via the public API")
	}
}
