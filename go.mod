module sdnavail

go 1.22
