// Maintenance tradeoff: the paper's §V.D observes that host availability
// A_H depends on the vendor maintenance contract — Same Day (~4 h MTTR),
// Next Day (~24 h) or Next Business Day (~48 h) — and that rack separation
// buys about five minutes a year. This example quantifies the full
// cost/resiliency matrix an operator would weigh before capital
// investment: maintenance contract × rack count.
package main

import (
	"fmt"

	"sdnavail"
)

func main() {
	hw := sdnavail.NewHWModel()
	levels := []sdnavail.MaintenanceLevel{
		sdnavail.SameDay, sdnavail.NextDay, sdnavail.NextBusinessDay,
	}
	kinds := []sdnavail.TopologyKind{
		sdnavail.SmallTopology, sdnavail.MediumTopology, sdnavail.LargeTopology,
	}

	fmt.Println("Controller downtime (minutes/year) by maintenance contract and topology")
	fmt.Printf("%-10s %-9s", "contract", "A_H")
	for _, k := range kinds {
		fmt.Printf(" %8s", k)
	}
	fmt.Println()
	for _, level := range levels {
		p := sdnavail.DefaultParams().WithMaintenance(level)
		fmt.Printf("%-10s %.5f", level, p.AH)
		for _, k := range kinds {
			a, err := hw.ByKind(k, p)
			if err != nil {
				panic(err)
			}
			fmt.Printf(" %8.2f", sdnavail.DowntimeMinutesPerYear(a))
		}
		fmt.Println()
	}

	fmt.Println("\nWhat the matrix says:")
	fmt.Println("  - Upgrading NBD → SD maintenance helps every topology, and helps the")
	fmt.Println("    single-rack deployments most: slow host repair compounds with the")
	fmt.Println("    quorum living on one rack.")
	fmt.Println("  - The third rack's ~5 min/year saving is independent of the contract;")
	fmt.Println("    it removes the rack single point of failure rather than shortening")
	fmt.Println("    repairs.")
	fmt.Println("  - Two racks never beat one: the quorum still shares rack R1, and the")
	fmt.Println("    second rack only adds its own failure modes.")

	fmt.Println("\nBreak-even view (Large vs Small, SD contract):")
	pSD := sdnavail.DefaultParams().WithMaintenance(sdnavail.SameDay)
	small, _ := hw.ByKind(sdnavail.SmallTopology, pSD)
	large, _ := hw.ByKind(sdnavail.LargeTopology, pSD)
	saved := sdnavail.DowntimeMinutesPerYear(small) - sdnavail.DowntimeMinutesPerYear(large)
	fmt.Printf("  two extra racks buy %.1f minutes/year on average — but they convert a\n", saved)
	fmt.Println("  rare, highly visible total-site outage (a rack failure every ~500 years")
	fmt.Println("  lasting days) into a non-event, which is what a provider with hundreds")
	fmt.Println("  of edge sites actually pays for.")
}
