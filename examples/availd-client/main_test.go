package main

import (
	"context"
	"strings"
	"testing"
	"time"

	"sdnavail/internal/server"
)

// TestClientAgainstLiveServer runs the full client sequence against a
// real in-process availd server sized so the burst must shed: the client
// retries through 429s on the analytic path, counts sheds without
// failing, and reports zero server errors.
func TestClientAgainstLiveServer(t *testing.T) {
	srv, err := server.New(server.Config{
		Addr:          "127.0.0.1:0",
		MaxConcurrent: 2,
		MaxQueue:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Listen(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ctx) }()
	defer func() {
		cancel()
		<-served
	}()

	var sb strings.Builder
	runErr := run([]string{
		"-base", "http://" + srv.Addr(),
		"-burst", "8", // 2 slots + 2 queue -> must shed
		"-timeout", "30s",
		"-expect-shed",
	}, &sb)
	out := sb.String()
	if runErr != nil {
		t.Fatalf("client failed: %v\noutput:\n%s", runErr, out)
	}
	for _, want := range []string{
		"cached=false", "cached=true", // memoization visible to clients
		"burst done:", "0 server errors",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q in:\n%s", want, out)
		}
	}
}

// TestClientRejectsBadFlags: flag validation fails fast.
func TestClientRejectsBadFlags(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-bogus"}, &sb); err == nil {
		t.Error("unknown flag accepted")
	}
	if err := run([]string{"-burst", "0"}, &sb); err == nil {
		t.Error("zero burst accepted")
	}
	if err := run([]string{"-retries", "-1"}, &sb); err == nil {
		t.Error("negative retries accepted")
	}
}

// TestClientReportsDownServer: a dead endpoint is an error, not a hang.
func TestClientReportsDownServer(t *testing.T) {
	var sb strings.Builder
	start := time.Now()
	err := run([]string{"-base", "http://127.0.0.1:1", "-burst", "1", "-timeout", "2s"}, &sb)
	if err == nil {
		t.Error("unreachable server reported success")
	}
	if time.Since(start) > 30*time.Second {
		t.Error("client hung on unreachable server")
	}
}
