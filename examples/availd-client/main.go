// Command availd-client is a reference client for the availd HTTP API —
// and the load driver the CI smoke test points at a live daemon.
//
// It demonstrates the client half of the service's robustness contract:
//
//   - per-request timeouts (the server returns truncated partial
//     estimates at its deadline; the client budget is set above it),
//   - explicit 429 handling: a shed response is not an error, it is the
//     server declaring capacity — honor Retry-After and try again,
//   - treating any 5xx as a real failure worth reporting loudly.
//
// Usage:
//
//	availd-client [-base http://127.0.0.1:8080] [-burst n]
//	              [-timeout d] [-retries n] [-expect-shed]
//
// The client first runs a few analytic queries (retrying through sheds),
// then fires -burst concurrent Monte Carlo what-ifs to probe the
// admission gate, and prints the status breakdown. Exit is non-zero if
// any request answered 5xx, if nothing succeeded, or if -expect-shed was
// given and the burst was never shed (the gate did not engage).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "availd-client:", err)
		os.Exit(1)
	}
}

// result tallies the burst outcomes.
type result struct {
	ok200, shed429, client4xx, server5xx, netErr atomic.Int64
}

// run drives the demo/smoke sequence against the daemon at -base.
func run(args []string, out io.Writer) error {
	flag := flag.NewFlagSet("availd-client", flag.ContinueOnError)
	var (
		base       = flag.String("base", "http://127.0.0.1:8080", "availd base URL")
		burst      = flag.Int("burst", 16, "concurrent Monte Carlo what-ifs in the load probe")
		timeout    = flag.Duration("timeout", 15*time.Second, "client-side budget per request (set above the server deadline)")
		retries    = flag.Int("retries", 3, "retry attempts after a 429 shed")
		expectShed = flag.Bool("expect-shed", false, "fail unless the burst saw at least one 429 (smoke mode: prove the gate engages)")

		bench        = flag.Bool("bench", false, "run the closed-loop benchmark instead of the demo/smoke sequence")
		benchOut     = flag.String("bench-out", "BENCH_availd.json", "benchmark artifact path")
		shardBase    = flag.String("shard-base", "", "sharding-coordinator availd base URL (bench: skipped when empty)")
		storeBase    = flag.String("store-base", "", "store-enabled availd base URL (bench: skipped when empty)")
		benchReqs    = flag.Int("bench-requests", 16, "requests per benchmark phase")
		benchClients = flag.Int("bench-clients", 2, "concurrent closed-loop clients per benchmark phase")
		benchReps    = flag.Int("bench-reps", 256, "MC replications per benchmark request")
		benchHorizon = flag.Int("bench-horizon", 20000, "MC horizon hours per benchmark request")
		benchStreams = flag.Int("bench-streams", 3, "SSE streams in the time-to-first-estimate phase")
		benchSLOMs   = flag.Float64("bench-slo-ms", 0, "p99 latency SLO in ms recorded per phase (0 = off)")
	)
	if err := flag.Parse(args); err != nil {
		return err
	}
	if *bench {
		if *benchReqs < 1 || *benchClients < 1 || *benchStreams < 0 {
			return fmt.Errorf("-bench-requests and -bench-clients must be >= 1, -bench-streams >= 0")
		}
		return runBench(benchConfig{
			base:      *base,
			shardBase: *shardBase,
			storeBase: *storeBase,
			out:       *benchOut,
			requests:  *benchReqs,
			clients:   *benchClients,
			reps:      *benchReps,
			horizon:   *benchHorizon,
			streams:   *benchStreams,
			sloMS:     *benchSLOMs,
			timeout:   *timeout,
		}, out)
	}
	if *burst < 1 || *retries < 0 {
		return fmt.Errorf("-burst must be >= 1 and -retries >= 0")
	}
	client := &http.Client{Timeout: *timeout}

	// Analytic queries: cheap, memoized server-side, retried through
	// sheds. The second identical query should come back cached.
	for _, q := range []string{
		"/api/v1/analytic?profile=opencontrail&topology=large&scenario=2",
		"/api/v1/analytic?profile=opencontrail&topology=large&scenario=2",
		"/api/v1/analytic?profile=onos&topology=small&cluster=5",
	} {
		var resp struct {
			CP     float64 `json:"cp_availability"`
			Nines  float64 `json:"cp_nines"`
			Cached bool    `json:"cached"`
		}
		if err := getRetry(client, *base+q, *retries, &resp); err != nil {
			return fmt.Errorf("analytic %s: %w", q, err)
		}
		fmt.Fprintf(out, "analytic %s -> A_CP=%.6f (%.2f nines, cached=%v)\n", q, resp.CP, resp.Nines, resp.Cached)
	}

	// Load probe: a concurrent burst of real simulation work. 200s carry
	// estimates (possibly truncated partials — still valid data); 429s
	// are the gate doing its job; 5xx means the server broke.
	fmt.Fprintf(out, "burst: %d concurrent Monte Carlo what-ifs\n", *burst)
	var res result
	var wg sync.WaitGroup
	for i := 0; i < *burst; i++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			url := *base + "/api/v1/mc?topology=large&horizon=20000&reps=64&timeout=5s&seed=" + strconv.Itoa(seed)
			resp, err := client.Get(url)
			if err != nil {
				res.netErr.Add(1)
				return
			}
			defer resp.Body.Close()
			switch {
			case resp.StatusCode == http.StatusOK:
				var mc struct {
					Truncated    bool `json:"truncated"`
					Replications int  `json:"replications"`
				}
				if json.NewDecoder(resp.Body).Decode(&mc) == nil && mc.Truncated {
					fmt.Fprintf(out, "  seed %d: truncated partial after %d replications (still a valid estimate)\n",
						seed, mc.Replications)
				}
				res.ok200.Add(1)
			case resp.StatusCode == http.StatusTooManyRequests:
				res.shed429.Add(1)
			case resp.StatusCode >= 500:
				res.server5xx.Add(1)
			default:
				res.client4xx.Add(1)
			}
		}(i)
	}
	wg.Wait()

	fmt.Fprintf(out, "burst done: %d ok, %d shed (429), %d client errors, %d server errors, %d network errors\n",
		res.ok200.Load(), res.shed429.Load(), res.client4xx.Load(), res.server5xx.Load(), res.netErr.Load())

	switch {
	case res.server5xx.Load() > 0:
		return fmt.Errorf("%d requests answered 5xx", res.server5xx.Load())
	case res.client4xx.Load() > 0:
		return fmt.Errorf("%d well-formed requests rejected 4xx", res.client4xx.Load())
	case res.netErr.Load() > 0:
		return fmt.Errorf("%d requests failed at the network layer", res.netErr.Load())
	case res.ok200.Load() == 0:
		return fmt.Errorf("no request succeeded")
	case *expectShed && res.shed429.Load() == 0:
		return fmt.Errorf("burst of %d was never shed: admission gate did not engage", *burst)
	}
	return nil
}

// getRetry fetches url into v, retrying 429 sheds with decorrelated
// jitter (floored at the server's Retry-After hint) up to retries times
// within a total sleep budget. Any other non-200 is an error.
func getRetry(client *http.Client, url string, retries int, v any) error {
	bo := newBackoff(100*time.Millisecond, 2*time.Second, 10*time.Second, time.Now().UnixNano())
	for attempt := 0; ; attempt++ {
		resp, err := client.Get(url)
		if err != nil {
			return err
		}
		if resp.StatusCode == http.StatusTooManyRequests && attempt < retries {
			resp.Body.Close()
			wait, ok := bo.next(parseRetryAfter(resp))
			if !ok {
				return fmt.Errorf("shed %d times and the retry budget is spent", attempt+1)
			}
			time.Sleep(wait)
			continue
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
			return fmt.Errorf("status %d: %s", resp.StatusCode, body)
		}
		return json.NewDecoder(resp.Body).Decode(v)
	}
}

// parseRetryAfter reads the server's shed hint (0 when absent/invalid).
func parseRetryAfter(resp *http.Response) time.Duration {
	s := resp.Header.Get("Retry-After")
	if s == "" {
		return 0
	}
	secs, err := strconv.Atoi(s)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}
