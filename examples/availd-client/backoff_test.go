package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestBackoffDelayBounds: every delay stays within [base, cap] no matter
// how long the pressure lasts.
func TestBackoffDelayBounds(t *testing.T) {
	base, cap := 10*time.Millisecond, 80*time.Millisecond
	bo := newBackoff(base, cap, time.Hour, 1)
	for i := 0; i < 200; i++ {
		d, ok := bo.next(0)
		if !ok {
			t.Fatalf("delay %d refused with an hour of budget left", i)
		}
		if d < base || d > cap {
			t.Fatalf("delay %d = %v outside [%v, %v]", i, d, base, cap)
		}
	}
}

// TestBackoffDecorrelatedGrowth: under sustained pressure the upper edge
// of the jitter window must actually grow (up to the cap) — a policy that
// always sleeps near base is synchronized-retry bait.
func TestBackoffDecorrelatedGrowth(t *testing.T) {
	base, cap := 10*time.Millisecond, 500*time.Millisecond
	bo := newBackoff(base, cap, time.Hour, 42)
	max := time.Duration(0)
	for i := 0; i < 100; i++ {
		d, _ := bo.next(0)
		if d > max {
			max = d
		}
	}
	if max < 5*base {
		t.Errorf("100 draws never exceeded %v; the window is not widening", max)
	}
	if max > cap {
		t.Errorf("draw %v exceeded the %v cap", max, cap)
	}
}

// TestBackoffRetryAfterFloor: the server's hint floors the delay — the
// client may wait longer than asked, never less.
func TestBackoffRetryAfterFloor(t *testing.T) {
	bo := newBackoff(time.Millisecond, 10*time.Millisecond, time.Hour, 1)
	hint := 250 * time.Millisecond
	d, ok := bo.next(hint)
	if !ok {
		t.Fatal("refused with budget to spare")
	}
	if d < hint {
		t.Errorf("delay %v below the server's Retry-After floor %v", d, hint)
	}
}

// TestBackoffBudgetExhaustion: the total sleep is bounded — once the
// budget cannot cover the next delay the policy says stop, and the sum of
// granted delays never exceeds the budget.
func TestBackoffBudgetExhaustion(t *testing.T) {
	budget := 100 * time.Millisecond
	bo := newBackoff(10*time.Millisecond, 40*time.Millisecond, budget, 7)
	var total time.Duration
	stopped := false
	for i := 0; i < 1000; i++ {
		d, ok := bo.next(0)
		if !ok {
			stopped = true
			break
		}
		total += d
	}
	if !stopped {
		t.Fatal("1000 retries never exhausted a 100ms budget")
	}
	if total > budget {
		t.Errorf("granted %v of sleep against a %v budget", total, budget)
	}
}

// TestBackoffReproducible: the jitter is seeded, so two policies with the
// same seed draw the same schedule — what makes shed tests deterministic.
func TestBackoffReproducible(t *testing.T) {
	a := newBackoff(5*time.Millisecond, 50*time.Millisecond, time.Hour, 99)
	b := newBackoff(5*time.Millisecond, 50*time.Millisecond, time.Hour, 99)
	for i := 0; i < 50; i++ {
		da, _ := a.next(0)
		db, _ := b.next(0)
		if da != db {
			t.Fatalf("draw %d diverged: %v vs %v", i, da, db)
		}
	}
}

// TestGetRetryShedRecover: a server that sheds twice then answers must be
// survived transparently — getRetry eats the 429s, paces itself, and
// returns the eventual 200 body.
func TestGetRetryShedRecover(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.Write([]byte(`{"value": 7}`))
	}))
	defer ts.Close()
	var out struct {
		Value int `json:"value"`
	}
	if err := getRetry(ts.Client(), ts.URL, 5, &out); err != nil {
		t.Fatalf("getRetry through two sheds: %v", err)
	}
	if out.Value != 7 {
		t.Errorf("decoded %d, want 7", out.Value)
	}
	if n := hits.Load(); n != 3 {
		t.Errorf("server saw %d requests, want 3 (2 sheds + success)", n)
	}
}

// TestGetRetryBudgetSpent: a Retry-After hint larger than the client's
// whole retry budget means waiting is pointless — the client reports the
// spent budget instead of sleeping past it.
func TestGetRetryBudgetSpent(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "11") // 11s > the 10s total budget
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer ts.Close()
	start := time.Now()
	err := getRetry(ts.Client(), ts.URL, 5, nil)
	if err == nil || !strings.Contains(err.Error(), "retry budget is spent") {
		t.Fatalf("err = %v, want a spent retry budget", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("client slept %v before giving up; should refuse an unaffordable wait outright", elapsed)
	}
}

// TestGetRetryRetriesExhausted: persistent shed with affordable waits
// ends after the configured attempt count with the status error.
func TestGetRetryRetriesExhausted(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer ts.Close()
	err := getRetry(ts.Client(), ts.URL, 2, nil)
	if err == nil || !strings.Contains(err.Error(), "status 429") {
		t.Fatalf("err = %v, want the terminal 429", err)
	}
	if n := hits.Load(); n != 3 {
		t.Errorf("server saw %d requests, want 3 (initial + 2 retries)", n)
	}
}
