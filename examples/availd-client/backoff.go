package main

import (
	"math/rand"
	"time"
)

// Retry pacing for shed (429) responses: decorrelated jitter with a hard
// total-sleep budget. Fixed Retry-After honoring synchronizes every shed
// client into retry waves that re-saturate the gate in lockstep;
// decorrelated jitter (sleep = min(cap, uniform(base, 3×previous)))
// spreads the retries out while still backing off under sustained
// pressure, and the budget bounds how long a client will keep paying for
// a saturated server before reporting failure.
type backoff struct {
	base   time.Duration
	cap    time.Duration
	budget time.Duration // total sleep remaining before giving up
	prev   time.Duration
	rng    *rand.Rand
}

// newBackoff builds a policy. seed makes the jitter reproducible in tests.
func newBackoff(base, cap, budget time.Duration, seed int64) *backoff {
	if base < time.Millisecond {
		base = time.Millisecond
	}
	if cap < base {
		cap = base
	}
	return &backoff{base: base, cap: cap, budget: budget, rng: rand.New(rand.NewSource(seed))}
}

// next picks the sleep before the next retry. retryAfter is the server's
// Retry-After hint (zero when absent) and floors the delay — the jitter
// only ever waits longer than the server asked, never less. ok is false
// when the remaining budget cannot cover the delay: the caller should
// stop retrying.
func (b *backoff) next(retryAfter time.Duration) (d time.Duration, ok bool) {
	hi := 3 * b.prev
	if hi < b.base {
		hi = b.base
	}
	if hi > b.cap {
		hi = b.cap
	}
	d = b.base
	if span := int64(hi - b.base); span > 0 {
		d = b.base + time.Duration(b.rng.Int63n(span+1))
	}
	if retryAfter > d {
		d = retryAfter
	}
	if d > b.budget {
		return 0, false
	}
	b.budget -= d
	b.prev = d
	return d, true
}
