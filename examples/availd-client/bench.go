package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sdnavail/internal/stats"
)

// Bench mode: a closed-loop load harness that measures the scaling layer
// end to end and writes a machine-readable BENCH_availd.json artifact —
// single-node vs sharded MC throughput, cold vs warm persistent-store
// latency, and stream time-to-first-estimate. Every phase reports latency
// quantiles so -max-concurrent/-max-queue can be calibrated against a
// tail-latency SLO (-bench-slo-ms): if the p99 blows the SLO while sheds
// stay at zero, the queue is too deep; if sheds dominate while p99 is
// comfortable, capacity is too tight.

type benchConfig struct {
	base      string // single-node availd (required)
	shardBase string // coordinator availd (phase skipped when empty)
	storeBase string // store-enabled availd (phase skipped when empty)
	out       string

	requests int
	clients  int
	reps     int
	horizon  int
	streams  int
	sloMS    float64
	timeout  time.Duration
}

// benchPhase is one workload's measurement.
type benchPhase struct {
	Name           string  `json:"name"`
	Requests       int     `json:"requests"`
	Clients        int     `json:"clients"`
	OK             int     `json:"ok"`
	Shed           int     `json:"shed"`
	Errors         int     `json:"errors"`
	WallSeconds    float64 `json:"wall_seconds"`
	RequestsPerSec float64 `json:"requests_per_sec"`
	RepsPerSec     float64 `json:"reps_per_sec"`
	P50Ms          float64 `json:"p50_ms"`
	P90Ms          float64 `json:"p90_ms"`
	P99Ms          float64 `json:"p99_ms"`
	MaxMs          float64 `json:"max_ms"`
	SLOMs          float64 `json:"slo_ms,omitempty"`
	SLOMet         *bool   `json:"slo_met,omitempty"`
}

// streamBench measures progressive streaming: how early the first CI
// snapshot lands relative to the full run.
type streamBench struct {
	Streams           int     `json:"streams"`
	FirstSnapshotMs   float64 `json:"first_snapshot_ms_p50"`
	TotalMs           float64 `json:"total_ms_p50"`
	FirstFraction     float64 `json:"first_snapshot_fraction"`
	FirstSnapshotReps int     `json:"first_snapshot_reps"`
	TargetReps        int     `json:"target_reps"`
	Snapshots         int     `json:"snapshots_per_stream_p50"`
}

// benchReport is the BENCH_availd.json schema.
type benchReport struct {
	CPUs       int    `json:"cpus"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	When       string `json:"when"`
	RepsPerReq int    `json:"reps_per_request"`
	Horizon    int    `json:"horizon_hours"`

	Single  *benchPhase `json:"single,omitempty"`
	Sharded *benchPhase `json:"sharded,omitempty"`
	// SpeedupX is sharded/single MC throughput (reps/sec ratio). On a
	// 1-CPU host every process shares the core, so ~1.0 is the honest
	// ceiling; the scaling headline needs >= shard-count cores.
	SpeedupX float64 `json:"speedup_x,omitempty"`

	StoreCold *benchPhase `json:"store_cold,omitempty"`
	StoreWarm *benchPhase `json:"store_warm,omitempty"`
	// WarmOverCold is warm p50 / cold p50 — the acceptance bar is < 0.01.
	WarmOverCold float64 `json:"warm_over_cold_latency_ratio,omitempty"`

	Stream *streamBench `json:"stream,omitempty"`
}

// runBench drives all phases and writes the artifact.
func runBench(cfg benchConfig, out io.Writer) error {
	client := &http.Client{Timeout: cfg.timeout}
	rep := benchReport{
		CPUs:       runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		When:       time.Now().UTC().Format(time.RFC3339),
		RepsPerReq: cfg.reps,
		Horizon:    cfg.horizon,
	}

	mcQuery := func(seed int) string {
		return "/api/v1/mc?topology=large&horizon=" + strconv.Itoa(cfg.horizon) +
			"&reps=" + strconv.Itoa(cfg.reps) + "&seed=" + strconv.Itoa(seed)
	}

	fmt.Fprintf(out, "bench: single-node MC throughput (%d requests, %d clients)\n", cfg.requests, cfg.clients)
	single := closedLoop(client, cfg.base, "single", cfg, mcQuery, 0)
	rep.Single = &single

	if cfg.shardBase != "" {
		fmt.Fprintf(out, "bench: sharded MC throughput via %s\n", cfg.shardBase)
		sharded := closedLoop(client, cfg.shardBase, "sharded", cfg, mcQuery, 0)
		rep.Sharded = &sharded
		if single.RepsPerSec > 0 {
			rep.SpeedupX = sharded.RepsPerSec / single.RepsPerSec
		}
	}

	if cfg.storeBase != "" {
		// Same seed set cold then warm: the second pass must hit disk.
		fmt.Fprintf(out, "bench: persistent store cold/warm via %s\n", cfg.storeBase)
		cold := closedLoop(client, cfg.storeBase, "store_cold", cfg, mcQuery, 1_000_000)
		warm := closedLoop(client, cfg.storeBase, "store_warm", cfg, mcQuery, 1_000_000)
		rep.StoreCold, rep.StoreWarm = &cold, &warm
		if cold.P50Ms > 0 {
			rep.WarmOverCold = warm.P50Ms / cold.P50Ms
		}
	}

	fmt.Fprintf(out, "bench: stream time-to-first-estimate (%d streams)\n", cfg.streams)
	sb, err := benchStreams(client, cfg)
	if err != nil {
		fmt.Fprintf(out, "bench: stream phase failed: %v\n", err)
	} else {
		rep.Stream = &sb
	}

	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(cfg.out, append(raw, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "bench: wrote %s\n", cfg.out)
	if rep.SpeedupX > 0 {
		fmt.Fprintf(out, "bench: sharded speedup %.2fx (on %d CPUs)\n", rep.SpeedupX, rep.CPUs)
	}
	if rep.WarmOverCold > 0 {
		fmt.Fprintf(out, "bench: warm-store latency %.4fx of cold\n", rep.WarmOverCold)
	}
	if rep.Stream != nil {
		fmt.Fprintf(out, "bench: first stream snapshot at %.0f ms (%.1f%% of run)\n",
			rep.Stream.FirstSnapshotMs, 100*rep.Stream.FirstFraction)
	}
	return nil
}

// closedLoop fires cfg.requests requests (distinct seeds offset by
// seedBase) from cfg.clients concurrent workers, each issuing the next
// request as soon as its previous one answers.
func closedLoop(client *http.Client, base, name string, cfg benchConfig, query func(seed int) string, seedBase int) benchPhase {
	ph := benchPhase{Name: name, Requests: cfg.requests, Clients: cfg.clients}
	var next atomic.Int64
	var mu sync.Mutex
	var latencies []float64
	var okReps int64

	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < cfg.clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= cfg.requests {
					return
				}
				t0 := time.Now()
				resp, err := client.Get(base + query(seedBase+i))
				lat := time.Since(t0).Seconds() * 1000
				mu.Lock()
				if err != nil {
					ph.Errors++
				} else {
					switch resp.StatusCode {
					case http.StatusOK:
						ph.OK++
						latencies = append(latencies, lat)
						var mc struct {
							Replications int `json:"replications"`
						}
						if json.NewDecoder(resp.Body).Decode(&mc) == nil {
							okReps += int64(mc.Replications)
						}
					case http.StatusTooManyRequests:
						ph.Shed++
					default:
						ph.Errors++
					}
					resp.Body.Close()
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	ph.WallSeconds = time.Since(start).Seconds()
	if ph.WallSeconds > 0 {
		ph.RequestsPerSec = float64(ph.OK) / ph.WallSeconds
		ph.RepsPerSec = float64(okReps) / ph.WallSeconds
	}
	sum := stats.Summarize(latencies)
	ph.P50Ms, ph.P90Ms, ph.P99Ms, ph.MaxMs = sum.P50, sum.P90, sum.P99, sum.Max
	if cfg.sloMS > 0 {
		ph.SLOMs = cfg.sloMS
		met := sum.P99 <= cfg.sloMS
		ph.SLOMet = &met
	}
	return ph
}

// benchStreams opens SSE runs and measures time-to-first-snapshot.
func benchStreams(client *http.Client, cfg benchConfig) (streamBench, error) {
	sb := streamBench{Streams: cfg.streams}
	var firsts, totals, snaps []float64
	for i := 0; i < cfg.streams; i++ {
		url := cfg.base + "/api/v1/mc/stream?topology=large&horizon=" + strconv.Itoa(cfg.horizon) +
			"&reps=" + strconv.Itoa(cfg.reps) + "&seed=" + strconv.Itoa(2_000_000+i)
		first, total, n, firstReps, target, err := runOneStream(client, url)
		if err != nil {
			return sb, err
		}
		firsts = append(firsts, first)
		totals = append(totals, total)
		snaps = append(snaps, float64(n))
		sb.FirstSnapshotReps, sb.TargetReps = firstReps, target
	}
	sb.FirstSnapshotMs = stats.Summarize(firsts).P50
	sb.TotalMs = stats.Summarize(totals).P50
	sb.Snapshots = int(stats.Summarize(snaps).P50)
	if sb.TotalMs > 0 {
		sb.FirstFraction = sb.FirstSnapshotMs / sb.TotalMs
	}
	return sb, nil
}

// runOneStream consumes one SSE response, timing the first snapshot and
// the terminal result.
func runOneStream(client *http.Client, url string) (firstMs, totalMs float64, snapshots, firstReps, targetReps int, err error) {
	t0 := time.Now()
	resp, err := client.Get(url)
	if err != nil {
		return 0, 0, 0, 0, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, 0, 0, 0, 0, fmt.Errorf("stream status %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	event := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			switch event {
			case "snapshot":
				snapshots++
				if snapshots == 1 {
					firstMs = time.Since(t0).Seconds() * 1000
					var snap struct {
						Replications int `json:"replications"`
						TargetReps   int `json:"target_reps"`
					}
					if json.Unmarshal([]byte(data), &snap) == nil {
						firstReps, targetReps = snap.Replications, snap.TargetReps
					}
				}
			case "result":
				totalMs = time.Since(t0).Seconds() * 1000
				return firstMs, totalMs, snapshots, firstReps, targetReps, nil
			case "error":
				return 0, 0, snapshots, 0, 0, fmt.Errorf("stream error event: %s", data)
			}
		}
	}
	return 0, 0, snapshots, 0, 0, fmt.Errorf("stream ended without a result event")
}
