// Chaos testbed: boot the live in-process controller cluster, verify both
// planes end to end, then replay the paper's section III failure
// narrative — kill the three control processes one by one — and watch the
// data plane survive until the last control dies, exactly as the failure
// mode analysis predicts. Finishes with a supervisor auto-restart
// demonstration.
package main

import (
	"fmt"
	"time"

	"sdnavail"
)

func main() {
	prof := sdnavail.OpenContrail3x()
	topo := sdnavail.NewSmallTopology(prof.ClusterRoles, 3)
	c, err := sdnavail.NewCluster(sdnavail.ClusterConfig{
		Profile: prof, Topology: topo, ComputeHosts: 3,
	})
	if err != nil {
		panic(err)
	}
	if err := c.Start(); err != nil {
		panic(err)
	}
	defer c.Stop()

	fmt.Printf("cluster up: %d processes across %d controller nodes and %d compute hosts\n",
		len(c.Snapshot()), 3, c.ComputeHostCount())

	if err := c.ProbeCP(2 * time.Second); err != nil {
		panic("healthy CP probe failed: " + err.Error())
	}
	fmt.Println("control plane probe: OK (config create → quorum write → schema →")
	fmt.Println("  ifmap → control sync → analytics write/query/alarm)")
	for h := 0; h < c.ComputeHostCount(); h++ {
		conns, _ := c.AgentConnections(h)
		fmt.Printf("host %d data plane: OK, agent connected to control nodes %v\n", h, conns)
	}

	fmt.Println("\n== replaying the paper's section III narrative ==")
	step := 200 * time.Millisecond
	rep, err := sdnavail.RunScenario(c, sdnavail.SectionIIIScenario(step), step, 0, 0)
	if err != nil {
		panic(err)
	}
	fmt.Print(rep.String())

	fmt.Println("\n== supervisor auto-restart ==")
	if err := c.KillProcess("Config", 0, "config-api"); err != nil {
		panic(err)
	}
	fmt.Println("killed config-api on node 0...")
	start := time.Now()
	if c.WaitUntil(5*time.Second, func() bool { return c.Alive("Config", 0, "config-api") }) {
		fmt.Printf("supervisor-config auto-restarted it in %v\n", time.Since(start).Round(time.Millisecond))
	} else {
		fmt.Println("auto-restart did not happen (unexpected)")
	}

	fmt.Println("\n== manual-restart processes stay down ==")
	if err := c.KillProcess("Database", 2, "kafka"); err != nil {
		panic(err)
	}
	time.Sleep(100 * time.Millisecond)
	fmt.Printf("killed kafka on node 2; still down after 100ms: %v (manual restart required)\n",
		!c.Alive("Database", 2, "kafka"))
	if err := c.RestartProcess("Database", 2, "kafka"); err != nil {
		panic(err)
	}
	fmt.Println("operator restarted it; alive:", c.Alive("Database", 2, "kafka"))
}
