// Automation: the paper closes by noting that "identifying these process
// weak links allows service provider operations to develop automation to
// reduce downtime". This example demonstrates exactly that on the live
// testbed: the same Database quorum outage is injected twice — once with
// no remediation and once with an operator bot watching — and the observed
// control-plane availability is compared.
package main

import (
	"fmt"
	"time"

	"sdnavail"
)

func runIncident(withBot bool) (availability float64, restarts int) {
	prof := sdnavail.OpenContrail3x()
	topo := sdnavail.NewSmallTopology(prof.ClusterRoles, 3)
	c, err := sdnavail.NewCluster(sdnavail.ClusterConfig{
		Profile: prof, Topology: topo, ComputeHosts: 2,
	})
	if err != nil {
		panic(err)
	}
	if err := c.Start(); err != nil {
		panic(err)
	}
	defer c.Stop()

	var op *sdnavail.Operator
	if withBot {
		op = sdnavail.NewOperator(30 * time.Millisecond) // scaled R_S
		if err := op.Start(c); err != nil {
			panic(err)
		}
		defer op.Stop()
	}

	// The §VI.G dominant failure mode: two replicas of a manual-restart
	// Database process die; no supervisor will ever bring them back.
	incident := []sdnavail.ChaosAction{
		sdnavail.ChaosStep(0, "kill cassandra (Config) on node 1", func(c *sdnavail.Cluster) error {
			return c.KillProcess("Database", 0, "cassandra-db (Config)")
		}),
		sdnavail.ChaosStep(50*time.Millisecond, "kill cassandra (Config) on node 2", func(c *sdnavail.Cluster) error {
			return c.KillProcess("Database", 1, "cassandra-db (Config)")
		}),
	}
	rep, err := sdnavail.RunScenario(c, incident, 500*time.Millisecond, 4*time.Millisecond, 40*time.Millisecond)
	if err != nil {
		panic(err)
	}
	if op != nil {
		restarts = op.Restarts()
	}
	return rep.CPAvailability, restarts
}

func main() {
	fmt.Println("Incident: double cassandra-db (Config) failure (quorum lost).")
	fmt.Println("Database processes are manual-restart — supervisors cannot help.")

	bare, _ := runIncident(false)
	fmt.Printf("\nwithout automation: observed CP availability %.3f (outage persists\n", bare)
	fmt.Println("  until a human notices; in production that is R_S ≈ 1 hour)")

	healed, restarts := runIncident(true)
	fmt.Printf("\nwith a 30ms-response operator bot: observed CP availability %.3f\n", healed)
	fmt.Printf("  (%d automatic restarts performed)\n", restarts)

	fmt.Println("\nThe analytic view of the same lever: cutting the manual restart time")
	fmt.Println("R_S moves A_S, the dominant CP weak link outside the rack:")
	for _, rs := range []float64{1, 0.25, 0.05} {
		p := sdnavail.DefaultParams().WithProcessTimes(5000, 0.1, rs)
		m := sdnavail.NewModel(sdnavail.OpenContrail3x(), sdnavail.Option2L)
		m.Params = p
		cp := m.ControlPlane()
		fmt.Printf("  R_S = %4.2f h  →  A_CP = %.8f  (%.2f min/year)\n",
			rs, cp, sdnavail.DowntimeMinutesPerYear(cp))
	}
}
