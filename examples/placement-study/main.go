// Placement study: the paper's HW-centric analysis compares three fixed
// reference topologies; the exact enumerator prices *any* placement, which
// is what an operator weighing rack budgets actually needs. This example
// evaluates five candidate layouts for the same 3-node cluster — the three
// reference designs plus two custom ones — and ranks them by control-plane
// downtime.
package main

import (
	"fmt"
	"sort"

	"sdnavail"
)

// dbRackSplit isolates the Database quorum in its own rack; Config,
// Control and Analytics share the first rack.
func dbRackSplit(prof *sdnavail.Profile) *sdnavail.Topology {
	t := &sdnavail.Topology{
		Name:        "DB-in-own-rack (2 racks)",
		ClusterSize: 3,
		Roles:       prof.ClusterRoles,
	}
	front := sdnavail.Rack{Name: "R1"}
	for i := 0; i < 3; i++ {
		host := sdnavail.Host{Name: fmt.Sprintf("HF%d", i+1)}
		for _, role := range prof.ClusterRoles[:3] {
			letter := string(role[0])
			if role == "Config" {
				letter = "G"
			}
			host.VMs = append(host.VMs, sdnavail.TopologyVM{
				Name:       fmt.Sprintf("%s%d", letter, i+1),
				Placements: []sdnavail.Placement{{Role: role, Node: i}},
			})
		}
		front.Hosts = append(front.Hosts, host)
	}
	back := sdnavail.Rack{Name: "R2"}
	for i := 0; i < 3; i++ {
		back.Hosts = append(back.Hosts, sdnavail.Host{
			Name: fmt.Sprintf("HB%d", i+1),
			VMs: []sdnavail.TopologyVM{{
				Name:       fmt.Sprintf("D%d", i+1),
				Placements: []sdnavail.Placement{{Role: "Database", Node: i}},
			}},
		})
	}
	t.Racks = []sdnavail.Rack{front, back}
	return t
}

// twoPlusOneNodes spreads whole nodes over two racks 2+1 but keeps each
// node's roles on one host (a cheaper Medium).
func twoPlusOneNodes(prof *sdnavail.Profile) *sdnavail.Topology {
	small := sdnavail.NewSmallTopology(prof.ClusterRoles, 3)
	t := &sdnavail.Topology{
		Name:        "GCAD nodes split 2+1 (2 racks)",
		ClusterSize: 3,
		Roles:       prof.ClusterRoles,
	}
	hosts := small.Racks[0].Hosts
	t.Racks = []sdnavail.Rack{
		{Name: "R1", Hosts: []sdnavail.Host{hosts[0], hosts[1]}},
		{Name: "R2", Hosts: []sdnavail.Host{hosts[2]}},
	}
	return t
}

func main() {
	prof := sdnavail.OpenContrail3x()
	candidates := []*sdnavail.Topology{
		sdnavail.NewSmallTopology(prof.ClusterRoles, 3),
		sdnavail.NewMediumTopology(prof.ClusterRoles, 3),
		sdnavail.NewLargeTopology(prof.ClusterRoles, 3),
		dbRackSplit(prof),
		twoPlusOneNodes(prof),
	}

	type result struct {
		name       string
		racks      int
		cpDowntime float64
		dpDowntime float64
	}
	var results []result
	for _, topo := range candidates {
		if err := topo.Validate(); err != nil {
			panic(topo.Name + ": " + err.Error())
		}
		m := sdnavail.NewExactModel(prof, topo, sdnavail.SupervisorRequired)
		cp, err := m.ControlPlane()
		if err != nil {
			panic(err)
		}
		dp, err := m.DataPlane()
		if err != nil {
			panic(err)
		}
		racks, _, _ := topo.Counts()
		results = append(results, result{
			name:       topo.Name,
			racks:      racks,
			cpDowntime: sdnavail.DowntimeMinutesPerYear(cp),
			dpDowntime: sdnavail.DowntimeMinutesPerYear(dp),
		})
	}
	sort.Slice(results, func(i, j int) bool { return results[i].cpDowntime < results[j].cpDowntime })

	fmt.Println("Exact placement comparison (supervisor required, paper defaults)")
	fmt.Printf("%-32s %-6s %-14s %s\n", "layout", "racks", "CP m/y", "DP m/y")
	for _, r := range results {
		fmt.Printf("%-32s %-6d %-14.2f %.1f\n", r.name, r.racks, r.cpDowntime, r.dpDowntime)
	}

	fmt.Println("\nWhat the ranking shows:")
	fmt.Println("  - Large (3 racks) wins: no rack carries a quorum.")
	fmt.Println("  - Every 2-rack design loses to the 1-rack Small: whichever rack")
	fmt.Println("    holds a CP-critical majority is a single point of failure, and")
	fmt.Println("    the second rack only adds failure modes. Giving the Database its")
	fmt.Println("    own rack makes BOTH racks single points of failure — the worst")
	fmt.Println("    of the five. \"One rack or three, but not two\" is robust even")
	fmt.Println("    against creative 2-rack placements.")
}
