// Placement study: the paper's HW-centric analysis compares three fixed
// reference topologies; the placement sweep prices *every* way to put the
// controller cluster onto a rack/host grid, which is what an operator
// weighing rack budgets actually needs.
//
// Part 1 keeps the original study as named seed layouts: the three
// reference designs plus two hand-written 2-rack variants, scored by the
// exact model and ranked by control-plane downtime.
//
// Part 2 replaces hand enumeration with the sweep: every placement of the
// 3-node cluster over a 4-rack × 3-host grid with a failure-aware network
// fabric, scored analytically and cross-checked by the adaptive Monte
// Carlo engine, printed as a paper-style ranking table.
package main

import (
	"fmt"
	"sort"

	"sdnavail"
)

// dbRackSplit isolates the Database quorum in its own rack; Config,
// Control and Analytics share the first rack.
func dbRackSplit(prof *sdnavail.Profile) *sdnavail.Topology {
	t := &sdnavail.Topology{
		Name:        "DB-in-own-rack (2 racks)",
		ClusterSize: 3,
		Roles:       prof.ClusterRoles,
	}
	front := sdnavail.Rack{Name: "R1"}
	for i := 0; i < 3; i++ {
		host := sdnavail.Host{Name: fmt.Sprintf("HF%d", i+1)}
		for _, role := range prof.ClusterRoles[:3] {
			letter := string(role[0])
			if role == "Config" {
				letter = "G"
			}
			host.VMs = append(host.VMs, sdnavail.TopologyVM{
				Name:       fmt.Sprintf("%s%d", letter, i+1),
				Placements: []sdnavail.Placement{{Role: role, Node: i}},
			})
		}
		front.Hosts = append(front.Hosts, host)
	}
	back := sdnavail.Rack{Name: "R2"}
	for i := 0; i < 3; i++ {
		back.Hosts = append(back.Hosts, sdnavail.Host{
			Name: fmt.Sprintf("HB%d", i+1),
			VMs: []sdnavail.TopologyVM{{
				Name:       fmt.Sprintf("D%d", i+1),
				Placements: []sdnavail.Placement{{Role: "Database", Node: i}},
			}},
		})
	}
	t.Racks = []sdnavail.Rack{front, back}
	return t
}

// twoPlusOneNodes spreads whole nodes over two racks 2+1 but keeps each
// node's roles on one host (a cheaper Medium).
func twoPlusOneNodes(prof *sdnavail.Profile) *sdnavail.Topology {
	small := sdnavail.NewSmallTopology(prof.ClusterRoles, 3)
	t := &sdnavail.Topology{
		Name:        "GCAD nodes split 2+1 (2 racks)",
		ClusterSize: 3,
		Roles:       prof.ClusterRoles,
	}
	hosts := small.Racks[0].Hosts
	t.Racks = []sdnavail.Rack{
		{Name: "R1", Hosts: []sdnavail.Host{hosts[0], hosts[1]}},
		{Name: "R2", Hosts: []sdnavail.Host{hosts[2]}},
	}
	return t
}

// seedStudy is the original five-candidate exact comparison, kept as the
// named baselines the sweep's grid placements are judged against.
func seedStudy(prof *sdnavail.Profile) {
	candidates := []*sdnavail.Topology{
		sdnavail.NewSmallTopology(prof.ClusterRoles, 3),
		sdnavail.NewMediumTopology(prof.ClusterRoles, 3),
		sdnavail.NewLargeTopology(prof.ClusterRoles, 3),
		dbRackSplit(prof),
		twoPlusOneNodes(prof),
	}

	type result struct {
		name       string
		racks      int
		cpDowntime float64
		dpDowntime float64
	}
	var results []result
	for _, topo := range candidates {
		if err := topo.Validate(); err != nil {
			panic(topo.Name + ": " + err.Error())
		}
		m := sdnavail.NewExactModel(prof, topo, sdnavail.SupervisorRequired)
		cp, err := m.ControlPlane()
		if err != nil {
			panic(err)
		}
		dp, err := m.DataPlane()
		if err != nil {
			panic(err)
		}
		racks, _, _ := topo.Counts()
		results = append(results, result{
			name:       topo.Name,
			racks:      racks,
			cpDowntime: sdnavail.DowntimeMinutesPerYear(cp),
			dpDowntime: sdnavail.DowntimeMinutesPerYear(dp),
		})
	}
	sort.Slice(results, func(i, j int) bool { return results[i].cpDowntime < results[j].cpDowntime })

	fmt.Println("Seed layouts: exact comparison (supervisor required, paper defaults)")
	fmt.Printf("%-32s %-6s %-14s %s\n", "layout", "racks", "CP m/y", "DP m/y")
	for _, r := range results {
		fmt.Printf("%-32s %-6d %-14.2f %.1f\n", r.name, r.racks, r.cpDowntime, r.dpDowntime)
	}

	fmt.Println("\nWhat the seed ranking shows:")
	fmt.Println("  - Large (3 racks) wins: no rack carries a quorum.")
	fmt.Println("  - Every 2-rack design loses to the 1-rack Small: whichever rack")
	fmt.Println("    holds a CP-critical majority is a single point of failure, and")
	fmt.Println("    the second rack only adds failure modes. \"One rack or three,")
	fmt.Println("    but not two\" is robust even against creative 2-rack placements.")
}

// sweepStudy prices every grid placement instead of five hand-picked
// ones: 220 ways to put 3 controllers on a 4x3 host grid, subsampled to
// 24 candidates, each with the default network fabric declared as
// failure-aware links (10 000 h MTBF, 4 h MTTR per link).
func sweepStudy(prof *sdnavail.Profile) {
	spec := sdnavail.PlacementSpec{
		Profile:       prof,
		Scenario:      sdnavail.SupervisorRequired,
		Controllers:   3,
		LinkMTBF:      10_000,
		LinkMTTR:      4,
		MaxCandidates: 24,
		Horizon:       2e4, // laptop-scale cross-check horizon
		Seed:          1,
	}
	sw, err := sdnavail.RunPlacement(spec, sdnavail.SweepOptions{
		CITarget: 2e-3, MinReps: 8, MaxReps: 32, Batch: 8,
	})
	if err != nil {
		panic(err)
	}

	fmt.Printf("\nSweep: %d of %d enumerated placements of %d controllers on a %dx%d grid\n",
		len(sw.Results), sw.Candidates, spec.Controllers, 4, 3)
	fmt.Printf("%-4s %-16s %-6s %-12s %-12s %-9s %s\n",
		"rank", "placement", "racks", "quorum/rack", "analytic CP", "CP m/y", "MC CP (±CI)")
	for i, r := range sw.Results {
		shared := "no"
		if r.Candidate.QuorumSharesRack {
			shared = "YES"
		}
		fmt.Printf("%-4d %-16s %-6d %-12s %.8f   %-9.2f %.6f ± %.6f\n",
			i+1, r.Candidate.Label(), r.Candidate.RacksUsed, shared,
			r.AnalyticCP, sdnavail.DowntimeMinutesPerYear(r.AnalyticCP),
			r.MC.Estimate.CP.Mean, r.MC.Estimate.CP.HalfWide)
	}

	fmt.Println("\nWhat the sweep adds over the seeds:")
	fmt.Println("  - The grid confirms the seed rule at scale: every 3-rack spread")
	fmt.Println("    ties for best, every placement whose quorum shares a rack pays")
	fmt.Println("    roughly double the downtime, and link failures shift the whole")
	fmt.Println("    table without reordering it.")
	fmt.Println("  - Each row's Monte Carlo column is an independent cross-check of")
	fmt.Println("    the closed form on that candidate's failure-aware graph.")
}

func main() {
	prof := sdnavail.OpenContrail3x()
	seedStudy(prof)
	sweepStudy(prof)
}
