// Quickstart: evaluate the availability of a distributed SDN controller
// with the paper's default parameters — the closed-form HW-centric models
// for the three reference topologies, then the process-level SW-centric
// models for the paper's four analysis options.
package main

import (
	"fmt"

	"sdnavail"
)

func main() {
	prof := sdnavail.OpenContrail3x()
	params := sdnavail.DefaultParams()

	fmt.Println("== HW-centric Controller availability (paper §V) ==")
	hw := sdnavail.NewHWModel()
	fmt.Printf("  %-8s %-12s %s\n", "topology", "availability", "downtime")
	for _, kind := range []sdnavail.TopologyKind{
		sdnavail.SmallTopology, sdnavail.MediumTopology, sdnavail.LargeTopology,
	} {
		a, err := hw.ByKind(kind, params)
		if err != nil {
			panic(err)
		}
		fmt.Printf("  %-8s %.7f    %5.2f min/year\n", kind, a, sdnavail.DowntimeMinutesPerYear(a))
	}

	fmt.Println("\n== SW-centric process-level availability (paper §VI) ==")
	fmt.Printf("  %-6s %-11s %-12s %-11s %s\n", "option", "A_CP", "CP downtime", "A_DP", "DP downtime")
	for _, opt := range sdnavail.AnalysisOptions() {
		m := sdnavail.NewModel(prof, opt)
		cp, dp := m.Evaluate()
		fmt.Printf("  %-6s %.7f  %5.2f m/y    %.6f   %5.1f m/y\n",
			opt.Label(), cp, sdnavail.DowntimeMinutesPerYear(cp),
			dp, sdnavail.DowntimeMinutesPerYear(dp))
	}

	fmt.Println("\nReadings:")
	fmt.Println("  - Two racks are worse than one; three are better (\"one rack or three\").")
	fmt.Println("  - Requiring the supervisor costs ~0.7 m/y of CP and ~100 m/y of DP downtime.")
	fmt.Println("  - The host data plane trails the control plane by two nines: the")
	fmt.Println("    vrouter-agent and vrouter-dpdk processes are per-host single points")
	fmt.Println("    of failure.")
}
