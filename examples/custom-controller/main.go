// Custom controller: the paper claims its framework extends to any
// distributed SDN controller "simply by populating the tables
// appropriately". This example does exactly that: it describes a
// hypothetical next-generation controller from scratch — different roles,
// different process inventory, different quorum requirements — derives its
// Tables II and III automatically, and runs the same availability
// analysis used for OpenContrail.
package main

import (
	"fmt"

	"sdnavail"
	"sdnavail/internal/profile"
)

// fabricMind describes a made-up controller with two clustered roles: a
// combined api+intent "Brain" role with an embedded consensus log, and a
// "Telemetry" role, plus an eBPF-style per-host dataplane with a single
// critical process.
func fabricMind() *sdnavail.Profile {
	p := &sdnavail.Profile{
		Name:         "FabricMind 1.0",
		Description:  "Hypothetical intent-based controller: Brain role with embedded raft log, Telemetry role, eBPF host dataplane.",
		ClusterRoles: []sdnavail.Role{"Brain", "Telemetry"},
		HostRole:     "HostPlane",
		Processes: []sdnavail.Process{
			{
				Name: "intent-api", Role: "Brain", Restart: sdnavail.AutoRestart,
				CP: sdnavail.OneOf, DP: sdnavail.NotRequired,
				FailureEffect: "Northbound intent API unavailable on the node.",
			},
			{
				Name: "compiler", Role: "Brain", Restart: sdnavail.AutoRestart,
				CP: sdnavail.OneOf, DP: sdnavail.NotRequired,
				FailureEffect: "Intents are not compiled into flow state.",
			},
			{
				Name: "raft-log", Role: "Brain", Restart: sdnavail.AutoRestart,
				CP: sdnavail.Majority, DP: sdnavail.NotRequired,
				FailureEffect: "Without a log majority, cluster state freezes.",
			},
			{
				Name: "flow-pusher", Role: "Brain", Restart: sdnavail.AutoRestart,
				CP: sdnavail.OneOf, DP: sdnavail.OneOf,
				FailureEffect: "Host planes fail over to a surviving pusher; losing all stops reprogramming.",
			},
			{
				Name: "supervisor-brain", Role: "Brain", Restart: sdnavail.ManualRestart,
				CP: sdnavail.NotRequired, DP: sdnavail.NotRequired, Supervisor: true,
				FailureEffect: "Brain runs unsupervised until restart.",
			},
			{
				Name: "ts-store", Role: "Telemetry", Restart: sdnavail.ManualRestart,
				CP: sdnavail.Majority, DP: sdnavail.NotRequired,
				FailureEffect: "Telemetry history loses quorum.",
			},
			{
				Name: "ts-query", Role: "Telemetry", Restart: sdnavail.AutoRestart,
				CP: sdnavail.OneOf, DP: sdnavail.NotRequired,
				FailureEffect: "Telemetry queries fail.",
			},
			{
				Name: "supervisor-telemetry", Role: "Telemetry", Restart: sdnavail.ManualRestart,
				CP: sdnavail.NotRequired, DP: sdnavail.NotRequired, Supervisor: true,
				FailureEffect: "Telemetry runs unsupervised until restart.",
			},
			{
				Name: "ebpf-datapath", Role: "HostPlane", Restart: sdnavail.AutoRestart,
				CP: sdnavail.NotRequired, DP: sdnavail.OneOf, PerHost: true,
				FailureEffect: "Host forwarding stops.",
			},
			{
				Name: "supervisor-hostplane", Role: "HostPlane", Restart: sdnavail.ManualRestart,
				CP: sdnavail.NotRequired, DP: sdnavail.NotRequired, Supervisor: true,
				FailureEffect: "Host plane runs unsupervised.",
			},
		},
	}
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return p
}

func main() {
	custom := fabricMind()

	fmt.Printf("Profile: %s\n%s\n\n", custom.Name, custom.Description)
	fmt.Print(profile.TableIIText(custom))
	fmt.Println()
	fmt.Print(profile.TableIIIText(custom))

	fmt.Println("\n== Same analysis, new controller ==")
	fmt.Printf("  %-6s %-24s %-11s %-12s %-10s %s\n", "option", "profile", "A_CP", "CP downtime", "A_DP", "DP downtime")
	for _, prof := range []*sdnavail.Profile{custom, sdnavail.OpenContrail3x()} {
		for _, opt := range []sdnavail.Option{sdnavail.Option2S, sdnavail.Option2L} {
			m := sdnavail.NewModel(prof, opt)
			cp, dp := m.Evaluate()
			fmt.Printf("  %-6s %-24s %.7f  %5.2f m/y   %.6f  %5.1f m/y\n",
				opt.Label(), prof.Name, cp, sdnavail.DowntimeMinutesPerYear(cp),
				dp, sdnavail.DowntimeMinutesPerYear(dp))
		}
	}

	fmt.Println("\nFabricMind's DP does better (one critical host process instead of")
	fmt.Println("two), while its CP carries two quorum components (raft-log, ts-store)")
	fmt.Println("against OpenContrail's four — the framework quantifies both effects")
	fmt.Println("from the tables alone.")
}
