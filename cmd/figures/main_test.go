package main

import (
	"strings"
	"testing"
)

func runOK(t *testing.T, args ...string) string {
	t.Helper()
	var sb strings.Builder
	if err := run(args, &sb); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return sb.String()
}

func TestFig3CSV(t *testing.T) {
	out := runOK(t, "-fig", "3", "-format", "csv", "-points", "5")
	if !strings.Contains(out, "x,Small,Medium,Large") {
		t.Errorf("fig3 CSV header missing:\n%s", out)
	}
	if !strings.Contains(out, "0.999,") {
		t.Error("fig3 CSV should start at A_C = 0.999")
	}
}

func TestFig4ASCII(t *testing.T) {
	out := runOK(t, "-fig", "4", "-points", "7")
	for _, want := range []string{"fig4", "a = 1S", "d = 2L"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig4 ASCII missing %q", want)
		}
	}
}

func TestFig5CSV(t *testing.T) {
	out := runOK(t, "-fig", "5", "-format", "csv", "-points", "3")
	if !strings.Contains(out, "x,1S,2S,1L,2L") {
		t.Errorf("fig5 CSV header missing:\n%s", out)
	}
}

func TestAllFigures(t *testing.T) {
	out := runOK(t, "-fig", "all", "-points", "3")
	for _, want := range []string{"fig3", "fig4", "fig5"} {
		if !strings.Contains(out, want) {
			t.Errorf("all-figures output missing %q", want)
		}
	}
}

func TestTablesAndAblations(t *testing.T) {
	out := runOK(t, "-tables", "-ablations", "-extensions")
	for _, want := range []string{
		"Table I", "Table II", "Table III",
		"SW-centric availability at default parameters",
		"rack separation", "supervisor requirement penalty",
		"outage frequency and duration", "weak links",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestValidationFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("validation run skipped in -short mode")
	}
	out := runOK(t, "-validate", "-reps", "2", "-horizon", "50000")
	if !strings.Contains(out, "Validation") || !strings.Contains(out, "1S") {
		t.Errorf("validation output unexpected:\n%s", out)
	}
}

func TestUnknownFigure(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-fig", "9"}, &sb); err == nil {
		t.Error("unknown figure accepted")
	}
	if err := run([]string{"-nope"}, &sb); err == nil {
		t.Error("unknown flag accepted")
	}
}
