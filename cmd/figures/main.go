// Command figures regenerates every table and figure of the paper's
// evaluation: Fig. 3 (HW-centric sweep), Figs. 4-5 (SW-centric CP/DP
// sweeps), Tables I-III, the headline downtime table, the ablation tables
// behind the §V.D/§VII observations, and the Monte Carlo validation the
// paper defers to future work.
//
// Usage:
//
//	figures [-fig 3|4|5|all] [-tables] [-ablations] [-validate] [-placement]
//	        [-format ascii|csv] [-points n] [-reps n] [-horizon h]
//	        [-ci-target w] [-min-reps n] [-max-reps n]
//	        [-controllers n] [-candidates n] [-top n]
//
// -ci-target switches the validation experiment to adaptive replication:
// each option replicates only until its CP confidence half-width meets the
// target, bounded by [-min-reps, -max-reps]; with it unset, -reps is the
// fixed count.
//
// -placement prints the controller-placement ranking: every way to place
// the -controllers cluster over the reference 4x3 rack/host grid (capped
// by -candidates), scored analytically and cross-checked by the adaptive
// Monte Carlo engine at a laptop-scale horizon.
//
// With no selection flags it prints everything.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"sdnavail/internal/experiments"
	"sdnavail/internal/profile"
	"sdnavail/internal/report"
	"sdnavail/internal/sweep"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

// run parses args and writes the requested figures and tables to out.
func run(args []string, out io.Writer) error {
	flag := flag.NewFlagSet("figures", flag.ContinueOnError)
	var (
		fig        = flag.String("fig", "", "figure to regenerate: 3, 4, 5 or all")
		tables     = flag.Bool("tables", false, "print Tables I-III and the headline table")
		ablations  = flag.Bool("ablations", false, "print the ablation tables")
		extensions = flag.Bool("extensions", false, "print the extension tables (outage frequency, weak links, assumption checks)")
		validate   = flag.Bool("validate", false, "run the Monte Carlo validation experiment")
		format     = flag.String("format", "ascii", "figure output: ascii or csv")
		points     = flag.Int("points", 41, "sweep points per series")
		reps       = flag.Int("reps", 8, "validation replications (fixed-count mode)")
		horizon    = flag.Float64("horizon", 3e5, "validation simulated hours per replication")
		seed       = flag.Int64("seed", 1, "validation seed")
		ciTarget   = flag.Float64("ci-target", 0, "adaptive validation: stop each option once the CP CI half-width is ≤ this (0 = fixed -reps)")
		minReps    = flag.Int("min-reps", 8, "adaptive validation: replication floor before the first stopping check")
		maxReps    = flag.Int("max-reps", 256, "adaptive validation: replication ceiling")

		placement   = flag.Bool("placement", false, "print the controller-placement ranking")
		controllers = flag.Int("controllers", 3, "placement: controller cluster size (odd)")
		candidates  = flag.Int("candidates", 60, "placement: candidate cap via deterministic subsampling (0 = all)")
		top         = flag.Int("top", 10, "placement: ranked rows to print (0 = all)")
	)
	if err := flag.Parse(args); err != nil {
		return err
	}

	all := *fig == "" && !*tables && !*ablations && !*extensions && !*validate && !*placement
	if all {
		*fig = "all"
		*tables = true
		*ablations = true
		*extensions = true
		*validate = true
		*placement = true
	}

	if *tables {
		prof := profile.OpenContrail3x()
		fmt.Fprintln(out, experiments.TableI(prof).Text())
		fmt.Fprintln(out, experiments.TableII(prof).Text())
		fmt.Fprintln(out, experiments.TableIII(prof).Text())
		fmt.Fprintln(out, experiments.HeadlineTable().Text())
	}

	emit := func(f report.Figure) {
		if *format == "csv" {
			fmt.Fprintf(out, "# %s — %s\n", f.ID, f.Title)
			fmt.Fprint(out, f.CSV())
		} else {
			fmt.Fprint(out, f.ASCII(72, 20))
		}
		fmt.Fprintln(out)
	}
	switch *fig {
	case "":
	case "3":
		emit(experiments.Fig3(*points))
	case "4":
		emit(experiments.Fig4(*points))
	case "5":
		emit(experiments.Fig5(*points))
	case "all":
		emit(experiments.Fig3(*points))
		emit(experiments.Fig4(*points))
		emit(experiments.Fig5(*points))
	default:
		return fmt.Errorf("unknown figure %q (want 3, 4, 5 or all)", *fig)
	}

	if *ablations {
		for _, t := range experiments.Ablations() {
			fmt.Fprintln(out, t.Text())
		}
	}

	if *extensions {
		for _, t := range experiments.Extensions() {
			fmt.Fprintln(out, t.Text())
		}
	}

	if *validate {
		var t report.Table
		if *ciTarget > 0 {
			_, t = experiments.AdaptiveValidation(sweep.Options{
				CITarget: *ciTarget, MinReps: *minReps, MaxReps: *maxReps,
			}, *horizon, *seed)
		} else {
			_, t = experiments.Validation(*reps, *horizon, *seed)
		}
		fmt.Fprintln(out, t.Text())
		fmt.Fprintln(out, experiments.DowntimeDistributionTable(*reps, *horizon, *seed).Text())
	}

	if *placement {
		// Laptop-scale horizon: the ranking compares hundreds of candidate
		// topologies, so each cross-check stays cheap and adaptive.
		spec := experiments.DefaultPlacementSpec(*controllers, 2e4, *seed)
		spec.MaxCandidates = *candidates
		popt := sweep.Options{CITarget: *ciTarget, MinReps: *minReps, MaxReps: *maxReps}
		if *ciTarget == 0 {
			popt = sweep.Options{CITarget: 2e-3, MinReps: 8, MaxReps: 32, Batch: 8}
		}
		_, t := experiments.PlacementStudy(spec, popt, *top)
		fmt.Fprintln(out, t.Text())
	}
	return nil
}
