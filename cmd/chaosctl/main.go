// Command chaosctl boots the live controller testbed and runs
// fault-injection experiments against it, reporting observed control-plane
// and data-plane availability.
//
// Usage:
//
//	chaosctl [-topology small|large] [-hosts n]
//	         [-scenario section3|dbquorum|rack|partition|asymlink|graphlink|crashloop|flapping|headless|staleread|leadercrash|grayleader|staleleader|ackdrop|campaign]
//	         [-scenario-file spec.json]
//	         [-step d] [-duration d] [-mbf d] [-repair d] [-seed s]
//	         [-headless-hold d] [-route-max-age d] [-catchup d]
//	         [-raft-election-min d] [-raft-election-max d] [-raft-heartbeat d] [-gray-detect d]
//	         [-snapshot] [-trace file.jsonl] [-metrics file.json]
//	chaosctl -soak [-soak-hours h] [-soak-mtbf h] [-topology t] [-hosts n] [-seed s]
//	         [-trace file.jsonl] [-metrics file.json]
//
// Scenarios:
//
//	section3    — the paper's §III control failure narrative
//	partition   — majority network partition and heal
//	asymlink    — asymmetric mesh link cuts (degraded, not down) and heal
//	graphlink   — network-fabric failures over the topology graph: a host
//	              uplink is severed, then the service-edge adjacency (full
//	              connectivity outage), then every link heals
//	crashloop   — crash-loop config-api until its supervisor gives up (FATAL)
//	flapping    — flap a control process into FATAL via flap detection
//	dbquorum    — Cassandra quorum loss and repair
//	rack        — full rack outage and operator recovery sweep
//	headless    — total control outages around a headless vRouter hold: the
//	              first is ridden out on stale routes, the second outlives
//	              the hold and flushes (defaults -headless-hold to 2*step)
//	staleread   — Cassandra replica revival with a deferred catch-up window
//	              (defaults -catchup to step)
//	leadercrash — crash the config-store RAFT leader and let it rejoin
//	grayleader  — gray failure: the leader keeps its lease but serves
//	              corrupted reads until cleared (or deposed, with
//	              -gray-detect in timed mode)
//	staleleader — partition the leader away from the majority (stale lease)
//	ackdrop     — Byzantine followers acknowledge writes without persisting
//	              them; killing the honest leader silently loses data the
//	              binary up/down model never sees
//	campaign    — randomized Poisson fault injection over all processes
//
// -scenario-file runs a declarative JSON scenario instead (see DESIGN.md
// for the DSL grammar); it overrides -scenario.
//
// The -headless-hold, -route-max-age and -catchup flags configure the
// cluster's graceful-degradation knobs for any scenario; zero keeps the
// strict flush-immediately / reconcile-instantly behaviour. The
// -raft-election-* flags switch the quorum stores from instant leadership
// to timed RAFT elections with randomized timeouts in [min, max];
// -gray-detect arms the gray-leader detector (timed mode only).
//
// -soak switches to the long-horizon soak mode: the testbed runs under a
// deterministic virtual clock through -soak-hours simulated hours of
// MTBF/MTTR-driven process failures (supervisors and an operator model
// performing the repairs), and the observed availability is compared
// against the Monte Carlo simulator and the closed-form models at the
// same parameters. A thousand simulated hours costs seconds of wall time.
// The soak also prints the per-failure-mode downtime attribution tables
// (live ledger vs Monte Carlo mirror vs analytic contributions).
//
// -trace writes the telemetry state-transition trace (one JSON event per
// line) and -metrics the metrics-registry snapshot; either flag also
// enables telemetry for scenario runs, adding the per-mode downtime
// attribution tables to the report.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sdnavail/internal/chaos"
	"sdnavail/internal/cluster"
	"sdnavail/internal/experiments"
	"sdnavail/internal/profile"
	"sdnavail/internal/report"
	"sdnavail/internal/telemetry"
	"sdnavail/internal/topology"
)

func main() {
	// Ctrl-C or SIGTERM cancels the run's context: a long soak stops at
	// its next virtual-clock wait, finalizes every aggregate at the
	// partial horizon, and still flushes the trace and metrics exports.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := runContext(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "chaosctl:", err)
		os.Exit(1)
	}
}

// run parses args, boots the testbed, executes the scenario, and writes
// the report to out.
func run(args []string, out io.Writer) error {
	return runContext(context.Background(), args, out)
}

// runContext is run under a cancellable context (the signal path).
func runContext(ctx context.Context, args []string, out io.Writer) error {
	flag := flag.NewFlagSet("chaosctl", flag.ContinueOnError)
	var (
		topoName = flag.String("topology", "small", "deployment topology: small or large")
		hosts    = flag.Int("hosts", 3, "vRouter compute hosts")
		scenario = flag.String("scenario", "section3", "scenario: section3, dbquorum, rack, partition, asymlink, graphlink, crashloop, flapping, headless, staleread, leadercrash, grayleader, staleleader, ackdrop or campaign")
		specFile = flag.String("scenario-file", "", "run a declarative JSON scenario from this file instead of -scenario")
		step     = flag.Duration("step", 250*time.Millisecond, "delay between scripted injections")
		duration = flag.Duration("duration", 2*time.Second, "campaign duration")
		mbf      = flag.Duration("mbf", 100*time.Millisecond, "campaign mean time between faults")
		repair   = flag.Duration("repair", 80*time.Millisecond, "campaign operator repair delay")
		seed     = flag.Int64("seed", 1, "campaign seed")
		hold     = flag.Duration("headless-hold", 0, "vRouter headless hold (0 = flush immediately)")
		maxAge   = flag.Duration("route-max-age", 0, "per-route staleness bound while headless (0 = keep all)")
		catchup  = flag.Duration("catchup", 0, "revived store replica catch-up latency (0 = instant resync)")
		raftMin  = flag.Duration("raft-election-min", 0, "RAFT election timeout lower bound (0 with max unset = instant leadership)")
		raftMax  = flag.Duration("raft-election-max", 0, "RAFT election timeout upper bound (enables timed elections)")
		raftHB   = flag.Duration("raft-heartbeat", 0, "RAFT heartbeat period (0 = election-min/4)")
		grayDet  = flag.Duration("gray-detect", 0, "gray-leader detection budget (0 = detector off; needs timed mode)")
		snapshot = flag.Bool("snapshot", false, "print the process snapshot after the run")

		soak      = flag.Bool("soak", false, "run the long-horizon virtual-time soak instead of a scenario")
		soakHours = flag.Float64("soak-hours", 1000, "soak: simulated hours")
		soakMTBF  = flag.Float64("soak-mtbf", 100, "soak: process mean time between failures in simulated hours")

		tracePath   = flag.String("trace", "", "write the telemetry state-transition trace as JSONL to this file")
		metricsPath = flag.String("metrics", "", "write the telemetry metrics snapshot as JSON to this file")
	)
	if err := flag.Parse(args); err != nil {
		return err
	}
	// Reject nonsense before booting anything: every timing knob with a
	// positive default must stay positive, the degradation and raft knobs
	// must not go negative, and the testbed needs at least one compute
	// host to probe.
	if *hosts < 1 {
		return fmt.Errorf("-hosts must be >= 1, got %d", *hosts)
	}
	for _, d := range []struct {
		name string
		v    time.Duration
	}{{"-step", *step}, {"-duration", *duration}, {"-mbf", *mbf}, {"-repair", *repair}} {
		if d.v <= 0 {
			return fmt.Errorf("%s must be > 0, got %v", d.name, d.v)
		}
	}
	for _, d := range []struct {
		name string
		v    time.Duration
	}{{"-headless-hold", *hold}, {"-route-max-age", *maxAge}, {"-catchup", *catchup}} {
		if d.v < 0 {
			return fmt.Errorf("%s must be >= 0, got %v", d.name, d.v)
		}
	}
	if *soakHours <= 0 || *soakMTBF <= 0 {
		return fmt.Errorf("-soak-hours and -soak-mtbf must be > 0")
	}
	raft := cluster.RaftConfig{
		ElectionMin: *raftMin, ElectionMax: *raftMax,
		Heartbeat: *raftHB, GrayDetect: *grayDet, Seed: *seed,
	}
	if err := raft.Validate(); err != nil {
		return err
	}
	// The degradation scenarios are no-ops without their knob; default it
	// from the step so the bare -scenario invocation shows the behaviour.
	if *scenario == "headless" && *hold == 0 {
		*hold = 2 * *step
	}
	if *scenario == "staleread" && *catchup == 0 {
		*catchup = *step
	}

	prof := profile.OpenContrail3x()
	var topo *topology.Topology
	switch *topoName {
	case "small":
		topo = topology.NewSmall(prof.ClusterRoles, 3)
	case "large":
		topo = topology.NewLarge(prof.ClusterRoles, 3)
	default:
		return fmt.Errorf("unknown topology %q", *topoName)
	}
	// The graphlink scenario cuts declared network links; give the
	// topology its default fabric (uplinks, rack core links, edge
	// adjacency) so those links exist to cut.
	if *scenario == "graphlink" && *specFile == "" {
		topo = topo.WithDefaultLinks(10_000, 4)
	}

	if *soak {
		sc := chaos.SoakConfig{
			Profile: prof, Topology: topo, ComputeHosts: *hosts,
			Hours: *soakHours, Seed: *seed, ProcessMTBF: *soakMTBF,
		}
		start := time.Now()
		oc, err := experiments.SoakWithAttributionContext(ctx, sc, 16)
		if err != nil {
			return err
		}
		row := oc.Row
		if oc.Soak.Truncated {
			fmt.Fprintf(out, "interrupted: soak truncated at %.0f of %.0f simulated hours; tables and exports cover the partial horizon\n",
				oc.Soak.Hours, *soakHours)
		}
		fmt.Fprintf(out, "soak: %.0f simulated hours on %s topology in %v wall (%d failures injected, %d operator restarts)\n\n",
			row.Hours, topo.Name, time.Since(start).Round(time.Millisecond), row.Failures, row.OperatorRestarts)
		fmt.Fprint(out, oc.AvailabilityTable.Text())
		fmt.Fprintln(out)
		fmt.Fprint(out, oc.CP.Table.Text())
		fmt.Fprintln(out)
		fmt.Fprint(out, oc.DP.Table.Text())
		return exportTelemetry(oc.Soak.Telemetry, *tracePath, *metricsPath)
	}

	// Telemetry stays off unless an export was requested — the disabled
	// path costs one nil check per state mutation.
	var tel *telemetry.Telemetry
	if *tracePath != "" || *metricsPath != "" {
		tel = telemetry.New()
	}
	c, err := cluster.New(cluster.Config{
		Profile: prof, Topology: topo, ComputeHosts: *hosts,
		Degradation: cluster.Degradation{HeadlessHold: *hold, RouteMaxAge: *maxAge, ReplicaCatchUp: *catchup},
		Raft:        raft,
		Telemetry:   tel,
	})
	if err != nil {
		return err
	}
	if err := c.Start(); err != nil {
		return err
	}
	defer c.Stop()

	fmt.Fprintf(out, "testbed up: %s topology, %d compute hosts, %d processes\n",
		topo.Name, *hosts, len(c.Snapshot()))

	var rep chaos.Report
	if *specFile != "" {
		data, err := os.ReadFile(*specFile)
		if err != nil {
			return err
		}
		spec, err := chaos.ParseScenarioSpec(data)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "running scenario %q from %s (%d steps)\n", spec.Name, *specFile, len(spec.Steps))
		rep, err = chaos.RunSpec(c, spec, 0, 0)
		if err != nil {
			return err
		}
		return finishReport(out, c, tel, rep, *snapshot, *tracePath, *metricsPath)
	}
	switch *scenario {
	case "section3":
		rep, err = chaos.RunScenario(c, chaos.SectionIII(*step), *step, 0, 0)
	case "dbquorum":
		rep, err = chaos.RunScenario(c, chaos.DatabaseQuorumLoss(*step), *step, 0, 0)
	case "rack":
		rack := topo.Racks[0].Name
		rep, err = chaos.RunScenario(c, chaos.RackOutage(rack, []int{0, 1, 2}, *step), 2**step, 0, 0)
	case "partition":
		rep, err = chaos.RunScenario(c, chaos.MajorityPartition(*step), 2**step, 0, 0)
	case "asymlink":
		rep, err = chaos.RunScenario(c, chaos.AsymmetricPartition(*step), 2**step, 0, 0)
	case "graphlink":
		uplink := "up:" + topo.Racks[0].Hosts[0].Name
		rep, err = chaos.RunScenario(c, chaos.GraphLinkOutage(uplink, "adj:edge", *step), 2**step, 0, 0)
	case "crashloop":
		rep, err = chaos.RunScenario(c, chaos.CrashLoop("Config", 0, "config-api", *step), *step, 0, 0)
	case "flapping":
		rep, err = chaos.RunScenario(c, chaos.FlappingControl(0, *step), *step, 0, 0)
	case "headless":
		rep, err = chaos.RunScenario(c, chaos.Headless(*step), 2**step, 0, 0)
	case "staleread":
		rep, err = chaos.RunScenario(c, chaos.StaleRead(*step), 3**step, 0, 0)
	case "leadercrash":
		rep, err = chaos.RunScenario(c, chaos.LeaderCrash(*step), 2**step, 0, 0)
	case "grayleader":
		rep, err = chaos.RunScenario(c, chaos.GrayLeader(*step), 2**step, 0, 0)
	case "staleleader":
		rep, err = chaos.RunScenario(c, chaos.StaleLeaderLease(*step), 2**step, 0, 0)
	case "ackdrop":
		rep, err = chaos.RunScenario(c, chaos.AckDropWrites(*step), 2**step, 0, 0)
	case "campaign":
		var hostNames []string
		for _, r := range topo.Racks {
			for _, h := range r.Hosts {
				hostNames = append(hostNames, h.Name)
			}
		}
		cp := chaos.Campaign{
			Seed:              *seed,
			Duration:          *duration,
			MeanBetweenFaults: *mbf,
			RepairAfter:       *repair,
			Processes:         true,
			Hosts:             true,
		}
		rep, err = cp.Run(c, hostNames, nil)
	default:
		return fmt.Errorf("unknown scenario %q", *scenario)
	}
	if err != nil {
		return err
	}
	return finishReport(out, c, tel, rep, *snapshot, *tracePath, *metricsPath)
}

// finishReport prints the chaos report, health, telemetry tables and the
// optional process snapshot, and exports the telemetry files.
func finishReport(out io.Writer, c *cluster.Cluster, tel *telemetry.Telemetry, rep chaos.Report, snapshot bool, tracePath, metricsPath string) error {
	fmt.Fprint(out, rep.String())
	fmt.Fprint(out, c.Health().String())

	if tel != nil {
		hours := c.TelemetryHours()
		tel.Ledger.CloseAll(hours)
		pub, dropped := c.BusStats()
		tel.Metrics.Gauge("bus_published").Set(float64(pub))
		tel.Metrics.Gauge("bus_dropped").Set(float64(dropped))
		fmt.Fprintln(out)
		fmt.Fprint(out, report.AttributionTable(tel.Ledger.Attribution("cp", hours)).Text())
		fmt.Fprintln(out)
		fmt.Fprint(out, report.AttributionTable(tel.Ledger.MergedPrefix("dp", "dp:", hours)).Text())
		if len(tel.Recovery.Kinds()) > 0 {
			fmt.Fprintln(out)
			fmt.Fprint(out, report.RecoveryTable(tel.Recovery).Text())
		}
		if err := exportTelemetry(tel, tracePath, metricsPath); err != nil {
			return err
		}
	}

	if snapshot {
		fmt.Fprintln(out, "\nfinal process snapshot:")
		for _, st := range c.Snapshot() {
			mark := "up"
			switch {
			case st.State == cluster.Fatal:
				mark = "FATAL"
			case !st.Alive:
				mark = "DOWN"
			}
			fmt.Fprintf(out, "  %-10s node %d  %-26s %-5s (restarts: %d)\n",
				st.Role, st.Node, st.Name, mark, st.Restarts)
		}
	}
	return nil
}

// exportTelemetry writes the trace (JSONL) and/or metrics snapshot (JSON)
// when paths were given.
func exportTelemetry(tel *telemetry.Telemetry, tracePath, metricsPath string) error {
	if tel == nil {
		return nil
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		if err := tel.Trace.WriteJSONL(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if metricsPath != "" {
		b, err := json.MarshalIndent(tel.Metrics.Snapshot(), "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(metricsPath, append(b, '\n'), 0o644); err != nil {
			return err
		}
	}
	return nil
}
