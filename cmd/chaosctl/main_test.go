package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestScenarios(t *testing.T) {
	if testing.Short() {
		t.Skip("live scenarios skipped in -short mode")
	}
	cases := []struct {
		name string
		args []string
		want []string
	}{
		{
			"section3",
			[]string{"-scenario", "section3", "-step", "60ms", "-hosts", "2"},
			[]string{"testbed up", "kill control-1", "forwarding tables flush", "observed CP availability"},
		},
		{
			"dbquorum",
			[]string{"-scenario", "dbquorum", "-step", "60ms", "-hosts", "2"},
			[]string{"quorum lost", "observed DP availability"},
		},
		{
			"partition",
			[]string{"-scenario", "partition", "-step", "80ms", "-hosts", "2", "-topology", "large"},
			[]string{"isolate controller nodes", "heal partition"},
		},
		{
			"crashloop",
			[]string{"-scenario", "crashloop", "-step", "250ms", "-hosts", "2", "-snapshot"},
			[]string{"start flaky injector", "manual restart", "cluster health:", "health samples:"},
		},
		{
			"flapping",
			[]string{"-scenario", "flapping", "-step", "300ms", "-hosts", "2"},
			[]string{"flapping", "manual restart of node-role", "cluster health:"},
		},
		{
			"asymlink",
			[]string{"-scenario", "asymlink", "-step", "100ms", "-hosts", "2"},
			[]string{"cut mesh link", "heal all mesh links", "cluster health: healthy"},
		},
		{
			"graphlink",
			[]string{"-scenario", "graphlink", "-step", "100ms", "-hosts", "2"},
			[]string{"cut graph link up:H1", "cut graph link adj:edge", "heal all graph links", "cluster health: healthy"},
		},
		{
			"campaign",
			[]string{"-scenario", "campaign", "-duration", "150ms", "-mbf", "40ms", "-repair", "30ms", "-hosts", "2", "-snapshot"},
			[]string{"chaos report", "final process snapshot"},
		},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			var sb strings.Builder
			if err := run(c.args, &sb); err != nil {
				t.Fatalf("run(%v): %v", c.args, err)
			}
			out := sb.String()
			for _, want := range c.want {
				if !strings.Contains(out, want) {
					t.Errorf("output missing %q in:\n%s", want, out)
				}
			}
		})
	}
}

func TestScenarioErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-topology", "nope"}, &sb); err == nil {
		t.Error("bad topology accepted")
	}
	if err := run([]string{"-scenario", "nope"}, &sb); err == nil {
		t.Error("bad scenario accepted")
	}
	if err := run([]string{"-hosts", "0"}, &sb); err == nil {
		t.Error("zero hosts accepted")
	}
	if err := run([]string{"-zzz"}, &sb); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestSoakMode(t *testing.T) {
	if testing.Short() {
		t.Skip("live soak skipped in -short mode")
	}
	var sb strings.Builder
	if err := run([]string{"-soak", "-soak-hours", "150", "-hosts", "2"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"soak: 150 simulated hours", "failures injected", "operator restarts",
		"Soak validation", "control plane A_CP", "host DP A_DP", "true",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q in:\n%s", want, out)
		}
	}
}

func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"zero step", []string{"-step", "0s"}},
		{"negative step", []string{"-step", "-10ms"}},
		{"zero duration", []string{"-scenario", "campaign", "-duration", "0s"}},
		{"negative mbf", []string{"-scenario", "campaign", "-mbf", "-1ms"}},
		{"zero repair", []string{"-scenario", "campaign", "-repair", "0s"}},
		{"negative hosts", []string{"-hosts", "-2"}},
		{"negative catchup", []string{"-catchup", "-5ms"}},
		{"negative headless hold", []string{"-headless-hold", "-5ms"}},
		{"negative route max age", []string{"-route-max-age", "-5ms"}},
		{"zero soak hours", []string{"-soak", "-soak-hours", "0"}},
		{"negative soak mtbf", []string{"-soak", "-soak-mtbf", "-1"}},
		{"raft min without max", []string{"-raft-election-min", "40ms"}},
		{"raft max below min", []string{"-raft-election-min", "80ms", "-raft-election-max", "40ms"}},
		{"gray detect without timed mode", []string{"-gray-detect", "100ms"}},
		{"negative raft heartbeat", []string{"-raft-election-min", "40ms", "-raft-election-max", "80ms", "-raft-heartbeat", "-1ms"}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			var sb strings.Builder
			if err := run(c.args, &sb); err == nil {
				t.Fatalf("run(%v) accepted invalid flags", c.args)
			}
		})
	}
}

func TestByzantineScenarios(t *testing.T) {
	if testing.Short() {
		t.Skip("live scenarios skipped in -short mode")
	}
	cases := []struct {
		name string
		args []string
		want []string
	}{
		{
			"leadercrash",
			[]string{"-scenario", "leadercrash", "-step", "80ms", "-hosts", "2"},
			[]string{"kill config-store leader replica", "restart crashed leader replica"},
		},
		{
			"ackdrop",
			[]string{"-scenario", "ackdrop", "-step", "80ms", "-hosts", "2"},
			[]string{"arm ack-drop", "integrity="},
		},
		{
			"grayleader timed",
			[]string{"-scenario", "grayleader", "-step", "120ms", "-hosts", "2",
				"-raft-election-min", "20ms", "-raft-election-max", "40ms", "-gray-detect", "50ms"},
			[]string{"inject gray leader", "clear byzantine flags"},
		},
		{
			"staleleader",
			[]string{"-scenario", "staleleader", "-step", "100ms", "-hosts", "2"},
			[]string{"isolate config-store leader node", "heal partition"},
		},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			var sb strings.Builder
			if err := run(c.args, &sb); err != nil {
				t.Fatalf("run(%v): %v", c.args, err)
			}
			out := sb.String()
			for _, want := range c.want {
				if !strings.Contains(out, want) {
					t.Errorf("output missing %q in:\n%s", want, out)
				}
			}
		})
	}
}

func TestScenarioFile(t *testing.T) {
	if testing.Short() {
		t.Skip("live scenarios skipped in -short mode")
	}
	spec := `{
  "name": "quorum-dip",
  "description": "kill two config replicas, restore one",
  "settle": "80ms",
  "steps": [
    {"op": "kill-process", "role": "Database", "node": 1, "name": "cassandra-db (Config)"},
    {"after": "80ms", "op": "kill-process", "role": "Database", "node": 2, "name": "cassandra-db (Config)"},
    {"after": "80ms", "op": "restart-process", "role": "Database", "node": 1, "name": "cassandra-db (Config)"}
  ]
}`
	path := t.TempDir() + "/spec.json"
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run([]string{"-scenario-file", path, "-hosts", "2"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{`running scenario "quorum-dip"`, "3 steps", "observed CP availability"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q in:\n%s", want, out)
		}
	}

	// A spec that fails validation is rejected with the step's diagnosis.
	bad := path + ".bad"
	if err := os.WriteFile(bad, []byte(`{"name":"x","steps":[{"op":"kill-process"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-scenario-file", bad}, &sb); err == nil {
		t.Fatal("invalid scenario file accepted")
	}
	if err := run([]string{"-scenario-file", path + ".missing"}, &sb); err == nil {
		t.Fatal("missing scenario file accepted")
	}
}

// TestSoakInterruptedFlushesExports: a cancelled context (the SIGINT
// path) truncates the soak at a partial horizon, says so in the report,
// and still writes the trace and metrics exports for the covered hours.
func TestSoakInterruptedFlushesExports(t *testing.T) {
	if testing.Short() {
		t.Skip("live soak skipped in -short mode")
	}
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.jsonl")
	metrics := filepath.Join(dir, "metrics.json")
	ctx, cancel := context.WithCancel(context.Background())
	var sb strings.Builder
	done := make(chan error, 1)
	go func() {
		done <- runContext(ctx, []string{"-soak", "-soak-hours", "1000000", "-hosts", "2",
			"-trace", trace, "-metrics", metrics}, &sb)
	}()
	time.Sleep(300 * time.Millisecond) // soak well under way
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("interrupted soak returned %v, want partial report", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("interrupted soak did not stop")
	}
	out := sb.String()
	if !strings.Contains(out, "interrupted: soak truncated at ") {
		t.Errorf("missing truncation note in:\n%s", out)
	}
	for _, f := range []string{trace, metrics} {
		info, err := os.Stat(f)
		if err != nil {
			t.Errorf("export %s not flushed: %v", f, err)
			continue
		}
		if info.Size() == 0 {
			t.Errorf("export %s is empty", f)
		}
	}
}
