package main

import (
	"strings"
	"testing"
)

func TestScenarios(t *testing.T) {
	if testing.Short() {
		t.Skip("live scenarios skipped in -short mode")
	}
	cases := []struct {
		name string
		args []string
		want []string
	}{
		{
			"section3",
			[]string{"-scenario", "section3", "-step", "60ms", "-hosts", "2"},
			[]string{"testbed up", "kill control-1", "forwarding tables flush", "observed CP availability"},
		},
		{
			"dbquorum",
			[]string{"-scenario", "dbquorum", "-step", "60ms", "-hosts", "2"},
			[]string{"quorum lost", "observed DP availability"},
		},
		{
			"partition",
			[]string{"-scenario", "partition", "-step", "80ms", "-hosts", "2", "-topology", "large"},
			[]string{"isolate controller nodes", "heal partition"},
		},
		{
			"crashloop",
			[]string{"-scenario", "crashloop", "-step", "250ms", "-hosts", "2", "-snapshot"},
			[]string{"start flaky injector", "manual restart", "cluster health:", "health samples:"},
		},
		{
			"flapping",
			[]string{"-scenario", "flapping", "-step", "300ms", "-hosts", "2"},
			[]string{"flapping", "manual restart of node-role", "cluster health:"},
		},
		{
			"asymlink",
			[]string{"-scenario", "asymlink", "-step", "100ms", "-hosts", "2"},
			[]string{"cut mesh link", "heal all mesh links", "cluster health: healthy"},
		},
		{
			"campaign",
			[]string{"-scenario", "campaign", "-duration", "150ms", "-mbf", "40ms", "-repair", "30ms", "-hosts", "2", "-snapshot"},
			[]string{"chaos report", "final process snapshot"},
		},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			var sb strings.Builder
			if err := run(c.args, &sb); err != nil {
				t.Fatalf("run(%v): %v", c.args, err)
			}
			out := sb.String()
			for _, want := range c.want {
				if !strings.Contains(out, want) {
					t.Errorf("output missing %q in:\n%s", want, out)
				}
			}
		})
	}
}

func TestScenarioErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-topology", "nope"}, &sb); err == nil {
		t.Error("bad topology accepted")
	}
	if err := run([]string{"-scenario", "nope"}, &sb); err == nil {
		t.Error("bad scenario accepted")
	}
	if err := run([]string{"-hosts", "0"}, &sb); err == nil {
		t.Error("zero hosts accepted")
	}
	if err := run([]string{"-zzz"}, &sb); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestSoakMode(t *testing.T) {
	if testing.Short() {
		t.Skip("live soak skipped in -short mode")
	}
	var sb strings.Builder
	if err := run([]string{"-soak", "-soak-hours", "150", "-hosts", "2"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"soak: 150 simulated hours", "failures injected", "operator restarts",
		"Soak validation", "control plane A_CP", "host DP A_DP", "true",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q in:\n%s", want, out)
		}
	}
}
