// Command availsim runs the Monte Carlo discrete-event availability
// simulator and compares its estimates against the closed-form analytic
// models — the validation the paper names as future work.
//
// Usage:
//
//	availsim [-topology small|medium|large] [-scenario 1|2]
//	         [-reps n] [-horizon hours] [-seed s] [-compute n]
//	         [-av f] [-ah f] [-ar f] [-a f] [-as f] [-headless hours]
//	         [-ci-target w] [-min-reps n] [-max-reps n]
//	availsim -rare [-rel-target e] [-rare-bias B] [-rare-hw-bias B]
//	         [-rare-link-bias B] [-rare-split-levels l1,l2,...]
//	         [-rare-split-factor m] [-min-reps n] [-max-reps n]
//	availsim -soak [-soak-hours h] [-topology t] [-compute n] [-reps n] [-seed s]
//	availsim -placement [-controllers n] [-racks n] [-hosts-per-rack n]
//	         [-candidates n] [-top n] [-link-mtbf h] [-link-mttr h]
//	         [-ci-target w] [-min-reps n] [-max-reps n] [-horizon hours]
//
// The default parameters are degraded from the paper's (more frequent
// failures) so a laptop-scale run converges tightly; pass the paper's
// values explicitly for production-grade rates.
//
// -ci-target switches to adaptive replication: the run stops as soon as
// the control-plane availability confidence half-width is no wider than
// the target, bounded by [-min-reps, -max-reps]; -reps is ignored. With
// it unset (the default), exactly -reps replications run.
//
// -rare switches to the rare-event engine for deep availability tails:
// failure draws are accelerated (forcing) and replications climbing toward
// quorum loss are cloned (importance splitting), with exact
// likelihood-ratio correction keeping the CP unavailability estimate
// unbiased. With no -rare-* schedule flags the biasing schedule is
// auto-selected from the configuration; setting any of them switches to a
// fully manual schedule. The run stops at -rel-target relative error
// (effective-sample-size gated) and prints the tail table with nines and
// the extrapolated speedup over naive Monte Carlo.
//
// -headless gives the vRouter agents a headless hold (hours): shared-DP
// outages shorter than the hold no longer take the host data planes down,
// and the host-DP row is compared against the analytic
// HeadlessDataPlane uplift instead of the strict closed form.
//
// -placement sweeps controller placements over a rack/host slot grid:
// every way to place the 2N+1 controllers onto distinct host slots is
// scored with the closed-form exact model and cross-checked by the
// adaptive Monte Carlo engine, then ranked best-first with the
// quorum-shares-rack hazard flagged. -link-mtbf > 0 additionally declares
// the default network fabric (host uplinks, rack fabric, edge adjacency)
// on every candidate so the ranking prices fabric failures too.
//
// -soak closes the validation triangle on running code: the live cluster
// testbed runs under a deterministic virtual clock through -soak-hours
// simulated hours of MTBF/MTTR cycles (scenario 1 semantics), and the
// observed availability is tabulated against the Monte Carlo estimate and
// the closed forms at the same parameters.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"sdnavail/internal/analytic"
	"sdnavail/internal/chaos"
	"sdnavail/internal/experiments"
	"sdnavail/internal/mc"
	"sdnavail/internal/profile"
	"sdnavail/internal/relmath"
	"sdnavail/internal/report"
	"sdnavail/internal/sweep"
	"sdnavail/internal/topology"
)

func main() {
	// Ctrl-C or SIGTERM cancels the run's context: the soak and the
	// simulation stop at their next cancellation check and report the
	// partial horizon instead of dying mid-table.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := runContext(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "availsim:", err)
		os.Exit(1)
	}
}

// run parses args, simulates, and writes the comparison to out.
func run(args []string, out io.Writer) error {
	return runContext(context.Background(), args, out)
}

// runContext is run under a cancellable context (the signal path).
func runContext(ctx context.Context, args []string, out io.Writer) error {
	flag := flag.NewFlagSet("availsim", flag.ContinueOnError)
	var (
		topoName = flag.String("topology", "large", "deployment topology: small, medium or large")
		scenario = flag.Int("scenario", 2, "supervisor scenario: 1 (not required) or 2 (required)")
		reps     = flag.Int("reps", 8, "independent replications")
		horizon  = flag.Float64("horizon", 4e5, "simulated hours per replication")
		seed     = flag.Int64("seed", 1, "random seed")
		compute  = flag.Int("compute", 4, "simulated vRouter compute hosts")
		av       = flag.Float64("av", 0.9995, "VM availability A_V")
		ah       = flag.Float64("ah", 0.999, "host availability A_H")
		ar       = flag.Float64("ar", 0.998, "rack availability A_R")
		a        = flag.Float64("a", 0.999, "supervised process availability A")
		as       = flag.Float64("as", 0.995, "manual process availability A_S")
		headless = flag.Float64("headless", 0, "vRouter headless hold in hours (0 = strict flush)")
		ciTarget = flag.Float64("ci-target", 0, "adaptive: stop once the CP CI half-width is ≤ this (0 = fixed -reps)")
		minReps  = flag.Int("min-reps", 4, "adaptive: replication floor before the first stopping check")
		maxReps  = flag.Int("max-reps", 128, "adaptive: replication ceiling")

		raftMin  = flag.Float64("raft-election-min", 0, "RAFT mirror: election timeout lower bound in hours")
		raftMax  = flag.Float64("raft-election-max", 0, "RAFT mirror: election timeout upper bound in hours (enables the mirror)")
		grayMTBF = flag.Float64("gray-mtbf", 0, "RAFT mirror: mean time between gray-leader onsets in hours (0 = never)")
		grayDet  = flag.Float64("gray-detect", 0, "RAFT mirror: gray-leader detection budget in hours")

		soak      = flag.Bool("soak", false, "validate against a live virtual-time soak of the cluster testbed")
		soakHours = flag.Float64("soak-hours", 1000, "soak: simulated hours for the live run")

		rare       = flag.Bool("rare", false, "rare-event mode: estimate deep-tail CP unavailability with forced failures and importance splitting")
		rareBias   = flag.Float64("rare-bias", 0, "rare: process failure bias factor (0 = auto-select)")
		rareHW     = flag.Float64("rare-hw-bias", 0, "rare: rack/host/VM failure bias factor (0 = auto-select)")
		rareLink   = flag.Float64("rare-link-bias", 0, "rare: network link failure bias factor (0 = auto-select)")
		rareLevels = flag.String("rare-split-levels", "", "rare: comma-separated down-entity splitting thresholds (empty = auto-select)")
		rareFactor = flag.Int("rare-split-factor", 0, "rare: splitting branch factor (0 = auto with levels)")
		relTarget  = flag.Float64("rel-target", 0.10, "rare: stop once the CP unavailability relative error is ≤ this")

		placement    = flag.Bool("placement", false, "rank controller placements over a rack/host slot grid")
		controllers  = flag.Int("controllers", 3, "placement: controller cluster size (odd)")
		racks        = flag.Int("racks", 4, "placement: racks in the slot grid")
		hostsPerRack = flag.Int("hosts-per-rack", 3, "placement: host slots per rack")
		candidates   = flag.Int("candidates", 0, "placement: cap the enumeration by deterministic subsampling (0 = all)")
		top          = flag.Int("top", 10, "placement: ranked rows to print (0 = all)")
		linkMTBF     = flag.Float64("link-mtbf", 0, "placement: network link MTBF in hours (0 = link-free candidates)")
		linkMTTR     = flag.Float64("link-mttr", 4, "placement: network link MTTR in hours")
	)
	if err := flag.Parse(args); err != nil {
		return err
	}

	var kind topology.Kind
	switch *topoName {
	case "small":
		kind = topology.Small
	case "medium":
		kind = topology.Medium
	case "large":
		kind = topology.Large
	default:
		return fmt.Errorf("unknown topology %q", *topoName)
	}
	sc := analytic.SupervisorNotRequired
	if *scenario == 2 {
		sc = analytic.SupervisorRequired
	} else if *scenario != 1 {
		return fmt.Errorf("scenario must be 1 or 2")
	}

	prof := profile.OpenContrail3x()
	topo, err := topology.ByKind(kind, prof.ClusterRoles, 3)
	if err != nil {
		return err
	}

	if *soak {
		sc := chaos.SoakConfig{
			Profile: prof, Topology: topo, ComputeHosts: *compute,
			Hours: *soakHours, Seed: *seed,
		}
		fmt.Fprintf(out, "soaking the live testbed: %s topology, %.0f simulated hours (seed %d), %d MC replications\n",
			topo.Name, *soakHours, *seed, *reps)
		oc, err := experiments.SoakWithAttributionContext(ctx, sc, *reps)
		if err != nil {
			return err
		}
		if oc.Soak.Truncated {
			fmt.Fprintf(out, "interrupted: soak truncated at %.0f of %.0f simulated hours; the tables below cover the partial horizon\n",
				oc.Soak.Hours, *soakHours)
		}
		fmt.Fprintf(out, "%d failures injected, %d operator restarts\n\n", oc.Row.Failures, oc.Row.OperatorRestarts)
		fmt.Fprint(out, oc.AvailabilityTable.Text())
		fmt.Fprintln(out)
		fmt.Fprint(out, oc.CP.Table.Text())
		fmt.Fprintln(out)
		fmt.Fprint(out, oc.DP.Table.Text())
		return nil
	}
	params := analytic.Params{AC: 0.995, AV: *av, AH: *ah, AR: *ar, A: *a, AS: *as}

	if *placement {
		return runPlacement(ctx, out, placementArgs{
			profile: prof, scenario: sc, params: params,
			controllers: *controllers, racks: *racks, hostsPerRack: *hostsPerRack,
			candidates: *candidates, top: *top,
			linkMTBF: *linkMTBF, linkMTTR: *linkMTTR,
			horizon: *horizon, compute: *compute, seed: *seed,
			ciTarget: *ciTarget, minReps: *minReps, maxReps: *maxReps,
		})
	}

	cfg := mc.NewConfig(prof, topo, sc, params)
	cfg.Horizon = *horizon
	cfg.Seed = *seed
	cfg.ComputeHosts = *compute
	cfg.HeadlessHold = *headless
	cfg.RaftElectionMin = *raftMin
	cfg.RaftElectionMax = *raftMax
	cfg.GrayLeaderMTBF = *grayMTBF
	cfg.GrayDetect = *grayDet

	opt := analytic.Option{Kind: kind, Scenario: sc}

	if *rare {
		rc, err := parseRareSchedule(*rareBias, *rareHW, *rareLink, *rareLevels, *rareFactor)
		if err != nil {
			return err
		}
		cfg.Rare = rc
		ropts := sweep.Options{RelTarget: *relTarget, MinReps: *minReps, MaxReps: *maxReps, Batch: *minReps}
		// The fixed-count defaults are sized for the plain comparison run;
		// deep tails need a real ESS floor before relative-error stopping is
		// trustworthy, and room to run when the tail is hard.
		if !flagWasSet(flag, "min-reps") {
			ropts.MinReps, ropts.Batch = 32, 32
		}
		if !flagWasSet(flag, "max-reps") {
			ropts.MaxReps = 4096
		}
		return runRare(ctx, out, opt, cfg, ropts)
	}

	var est mc.Estimate
	if *ciTarget > 0 {
		fmt.Fprintf(out, "simulating option %s: adaptive, CP half-width target %g (%d-%d replications × %.0f hours, seed %d)\n",
			opt.Label(), *ciTarget, *minReps, *maxReps, *horizon, *seed)
		res, err := sweep.RunContext(ctx, []sweep.Point{{ID: opt.Label(), Config: cfg}}, sweep.Options{
			CITarget: *ciTarget, MinReps: *minReps, MaxReps: *maxReps, Batch: *minReps,
		})
		if err != nil {
			return err
		}
		est = res[0].Estimate
		if res[0].Truncated {
			fmt.Fprintf(out, "interrupted after %d replications; the comparison below uses the partial estimate\n",
				res[0].Replications)
		} else if res[0].Converged {
			fmt.Fprintf(out, "converged after %d replications\n", res[0].Replications)
		} else {
			fmt.Fprintf(out, "ceiling: %d replications without meeting the target (half-width %.6f)\n",
				res[0].Replications, est.CP.HalfWide)
		}
	} else {
		fmt.Fprintf(out, "simulating option %s: %d replications × %.0f hours (seed %d)\n",
			opt.Label(), *reps, *horizon, *seed)
		var err error
		est, err = mc.RunContext(ctx, cfg, *reps, 0.99)
		if err != nil {
			return err
		}
		if est.Truncated {
			fmt.Fprintf(out, "interrupted after %d of %d replications; the comparison below uses the partial estimate\n",
				est.Replications, *reps)
		}
	}

	model := analytic.NewModel(prof, opt)
	model.Params = cfg.Params()
	cp, dp := model.Evaluate()
	dpLabel := "host DP A_DP"
	if *headless > 0 {
		rt := analytic.RepairTimes{
			Auto: cfg.AutoRestart, Manual: cfg.ManualRestart,
			VM: cfg.VMRepair, Host: cfg.HostRepair, Rack: cfg.RackRepair,
		}
		dp, err = model.HeadlessDataPlane(*headless, rt)
		if err != nil {
			return err
		}
		dpLabel = fmt.Sprintf("host DP (hold %gh)", *headless)
	}

	fmt.Fprintf(out, "\n%-22s %-14s %-24s %s\n", "metric", "analytic", "simulated (99% CI)", "agree")
	row := func(name string, analyticV float64, ci interface{ Contains(float64) bool }, mean, half float64) {
		agree := mean-half-4e-4 <= analyticV && analyticV <= mean+half+4e-4
		fmt.Fprintf(out, "%-22s %-14.6f %.6f ± %.6f      %v\n", name, analyticV, mean, half, agree)
	}
	row("control plane A_CP", cp, est.CP, est.CP.Mean, est.CP.HalfWide)
	row("shared DP A_SDP", model.SharedDP(), est.SharedDP, est.SharedDP.Mean, est.SharedDP.HalfWide)
	row(dpLabel, dp, est.HostDP, est.HostDP.Mean, est.HostDP.HalfWide)

	var events int
	var outages int
	var meanOutage float64
	for _, r := range est.Results {
		events += r.Events
		outages += r.CPOutages
		meanOutage += r.CPMeanOutageHours
	}
	if len(est.Results) > 0 {
		meanOutage /= float64(len(est.Results))
	}
	fmt.Fprintf(out, "\n%d events total; %d CP outages, mean duration %.2f h\n", events, outages, meanOutage)
	fmt.Fprintf(out, "simulated CP downtime: %.1f min/year equivalent\n",
		relmath.DowntimeMinutesPerYear(est.CP.Mean))

	// With the RAFT mirror enabled, report the leadership dynamics next to
	// the availability rows: leaderless windows and wrong-read exposure are
	// downtime the binary rows above cannot attribute.
	if cfg.RaftElectionMax > 0 {
		fmt.Fprintln(out)
		fmt.Fprint(out, report.ElectionTable(est.Elections, grayCyclesOf(est),
			est.MeanElectionHours, est.CPElectionUnavailability, est.CPWrongReadUnavailability).Text())
	}

	// Per-failure-mode attribution from the simulator's ledger mirror. The
	// analytic column covers the process modes only (it treats hardware as
	// exogenous), so hardware modes compare against an empty share.
	n := topo.ClusterSize
	cpCmp := report.AttributionComparisonTable(
		"\nControl-plane downtime shares by failure mode — Monte Carlo vs analytic (process modes)",
		[]string{"monte carlo", "analytic"},
		[]map[string]float64{
			mc.ModeShares(est.CPDowntimeByMode),
			contributionShares(analytic.CPContributions(prof, n, model.Params)),
		})
	fmt.Fprint(out, cpCmp.Text())
	dpCmp := report.AttributionComparisonTable(
		"\nHost data-plane downtime shares by failure mode — Monte Carlo vs analytic (process modes)",
		[]string{"monte carlo", "analytic"},
		[]map[string]float64{
			mc.ModeShares(est.DPDowntimeByMode),
			contributionShares(analytic.DPContributions(prof, n, model.Params)),
		})
	fmt.Fprint(out, dpCmp.Text())
	return nil
}

// parseRareSchedule builds the explicit rare-event schedule from the
// -rare-* flags. The zero value means "auto-select": TailStudy applies
// sweep.AutoRare. Setting any flag switches to a fully manual schedule —
// kinds left at zero simply stay unbiased.
func parseRareSchedule(pb, hb, lb float64, levels string, factor int) (mc.RareEventConfig, error) {
	var rc mc.RareEventConfig
	rc.ProcessBias, rc.HardwareBias, rc.LinkBias = pb, hb, lb
	if levels != "" {
		for _, tok := range strings.Split(levels, ",") {
			lv, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil {
				return rc, fmt.Errorf("-rare-split-levels: %q is not an integer", tok)
			}
			rc.SplitLevels = append(rc.SplitLevels, lv)
		}
		if factor == 0 {
			factor = 3
		}
	}
	rc.SplitFactor = factor
	return rc, nil
}

// flagWasSet reports whether the named flag appeared on the command line.
func flagWasSet(fs *flag.FlagSet, name string) bool {
	set := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// runRare estimates the deep-tail CP unavailability with the rare-event
// engine and prints the tail table with the naive-MC speedup
// extrapolation, anchored by the closed-form unavailability at the same
// parameters.
func runRare(ctx context.Context, out io.Writer, opt analytic.Option, cfg mc.Config, ropts sweep.Options) error {
	fmt.Fprintf(out, "rare-event mode, option %s: relative-error target %.0f%% (%d-%d replications × %.0f hours, seed %d)\n",
		opt.Label(), ropts.RelTarget*100, ropts.MinReps, ropts.MaxReps, cfg.Horizon, cfg.Seed)
	results, table, err := experiments.TailStudyContext(ctx, []experiments.TailPoint{
		{Label: opt.Label(), Config: cfg},
	}, ropts)
	if err != nil {
		return err
	}
	r := results[0]
	rc := r.Point.Config.Rare
	fmt.Fprintf(out, "biasing schedule: process ×%.3g, hardware ×%.3g, link ×%.3g; split levels %v, factor %d\n",
		effectiveBias(rc.ProcessBias), effectiveBias(rc.HardwareBias), effectiveBias(rc.LinkBias),
		rc.SplitLevels, rc.SplitFactor)
	switch {
	case r.Truncated:
		fmt.Fprintf(out, "interrupted after %d replications; the table reports the partial estimate\n", r.Replications)
	case r.Converged:
		fmt.Fprintf(out, "converged after %d replications (ESS %.0f)\n", r.Replications, r.Estimate.RareESS)
	default:
		fmt.Fprintf(out, "ceiling: %d replications without meeting the relative-error target (ESS %.0f)\n",
			r.Replications, r.Estimate.RareESS)
	}
	model := analytic.NewModel(cfg.Profile, opt)
	model.Params = cfg.Params()
	cp, _ := model.Evaluate()
	fmt.Fprintf(out, "analytic CP unavailability at these parameters: %.3e\n\n", 1-cp)
	fmt.Fprint(out, table.Text())
	return nil
}

// effectiveBias renders an unset bias factor as the identity.
func effectiveBias(b float64) float64 {
	if b <= 0 {
		return 1
	}
	return b
}

// placementArgs carries the parsed -placement flags.
type placementArgs struct {
	profile             *profile.Profile
	scenario            analytic.Scenario
	params              analytic.Params
	controllers         int
	racks, hostsPerRack int
	candidates, top     int
	linkMTBF, linkMTTR  float64
	horizon             float64
	compute             int
	seed                int64
	ciTarget            float64
	minReps, maxReps    int
}

// runPlacement executes the controller-placement sweep and prints the
// ranking with an analytic-vs-MC agreement summary.
func runPlacement(ctx context.Context, out io.Writer, a placementArgs) error {
	spec := sweep.PlacementSpec{
		Profile: a.profile, Scenario: a.scenario, Params: a.params,
		Controllers: a.controllers, Racks: a.racks, HostsPerRack: a.hostsPerRack,
		LinkMTBF: a.linkMTBF, LinkMTTR: a.linkMTTR, MaxCandidates: a.candidates,
		Horizon: a.horizon, ComputeHosts: a.compute, Seed: a.seed,
	}
	if err := spec.Validate(); err != nil {
		return err
	}
	fmt.Fprintf(out, "placement sweep: %d controllers over a %dx%d slot grid, scenario %v\n",
		a.controllers, a.racks, a.hostsPerRack, a.scenario)
	sw, err := sweep.RunPlacementContext(ctx, spec, sweep.Options{
		CITarget: a.ciTarget, MinReps: a.minReps, MaxReps: a.maxReps, Batch: a.minReps,
	})
	if err != nil {
		return err
	}
	evaluated := len(sw.Results)
	fmt.Fprintf(out, "%d candidate placements (%d enumerated)\n\n", evaluated, sw.Candidates)

	agree, truncated := 0, 0
	for _, r := range sw.Results {
		mean, half := r.MC.Estimate.CP.Mean, r.MC.Estimate.CP.HalfWide
		if mean-half-4e-4 <= r.AnalyticCP && r.AnalyticCP <= mean+half+4e-4 {
			agree++
		}
		if r.MC.Truncated {
			truncated++
		}
	}

	rows := sw.Results
	if a.top > 0 && a.top < len(rows) {
		rows = rows[:a.top]
	}
	tableRows := make([]report.PlacementRow, len(rows))
	for i, r := range rows {
		tableRows[i] = report.PlacementRow{
			Label:            r.Candidate.Label(),
			Racks:            r.Candidate.RacksUsed,
			QuorumSharesRack: r.Candidate.QuorumSharesRack,
			AnalyticCP:       r.AnalyticCP,
			MCCP:             r.MC.Estimate.CP.Mean,
			MCHalfWidth:      r.MC.Estimate.CP.HalfWide,
			Replications:     r.MC.Replications,
			Converged:        r.MC.Converged,
		}
	}
	title := fmt.Sprintf("Controller placement ranking — top %d of %d (analytic CP, MC cross-check)",
		len(rows), evaluated)
	fmt.Fprint(out, report.PlacementTable(title, tableRows).Text())
	fmt.Fprintf(out, "\nanalytic-vs-MC agreement: %d/%d candidates inside the CI band (+4e-4)\n", agree, evaluated)
	if truncated > 0 {
		fmt.Fprintf(out, "interrupted: %d candidates report partial MC estimates\n", truncated)
	}
	return nil
}

// grayCyclesOf totals the gray-leader cycles across the kept replication
// results.
func grayCyclesOf(est mc.Estimate) int {
	total := 0
	for _, r := range est.Results {
		total += r.GrayCycles
	}
	return total
}

// contributionShares flattens analytic contributions into mode → share.
func contributionShares(contribs []analytic.ModeContribution) map[string]float64 {
	out := map[string]float64{}
	for _, c := range contribs {
		out[c.Mode] = c.Share
	}
	return out
}
