package main

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestSimulationRun(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation run skipped in -short mode")
	}
	var sb strings.Builder
	err := run([]string{"-topology", "small", "-scenario", "2", "-reps", "2", "-horizon", "50000"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"simulating option 2S", "control plane A_CP", "host DP A_DP",
		"CP outages", "min/year equivalent",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q in:\n%s", want, out)
		}
	}
}

func TestSimulationErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-topology", "nope"}, &sb); err == nil {
		t.Error("bad topology accepted")
	}
	if err := run([]string{"-scenario", "3"}, &sb); err == nil {
		t.Error("bad scenario accepted")
	}
	if err := run([]string{"-reps", "0"}, &sb); err == nil {
		t.Error("zero reps accepted")
	}
	if err := run([]string{"-wat"}, &sb); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestSoakValidationMode(t *testing.T) {
	if testing.Short() {
		t.Skip("live soak skipped in -short mode")
	}
	var sb strings.Builder
	err := run([]string{"-soak", "-soak-hours", "150", "-topology", "small", "-compute", "2", "-reps", "4"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"soaking the live testbed", "Small topology", "150 simulated hours",
		"Soak validation", "control plane A_CP", "host DP A_DP",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q in:\n%s", want, out)
		}
	}
}

func TestRaftMirrorRun(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation run skipped in -short mode")
	}
	var sb strings.Builder
	err := run([]string{"-topology", "small", "-scenario", "1", "-reps", "2", "-horizon", "50000",
		"-raft-election-min", "0.04", "-raft-election-max", "0.08",
		"-gray-mtbf", "500", "-gray-detect", "0.05"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"RAFT leadership dynamics", "leader elections", "gray-leader cycles",
		"election unavailability", "wrong-read unavailability",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q in:\n%s", want, out)
		}
	}

	// Invalid raft tunings are rejected by config validation.
	if err := run([]string{"-raft-election-min", "0.1"}, &sb); err == nil {
		t.Error("raft min without max accepted")
	}
	if err := run([]string{"-gray-mtbf", "100"}, &sb); err == nil {
		t.Error("gray mtbf without mirror accepted")
	}
}

// TestSoakInterrupted: a cancelled context (the SIGINT path) truncates
// the soak at a partial horizon and the report says so instead of dying.
func TestSoakInterrupted(t *testing.T) {
	if testing.Short() {
		t.Skip("live soak skipped in -short mode")
	}
	ctx, cancel := context.WithCancel(context.Background())
	var sb strings.Builder
	done := make(chan error, 1)
	go func() {
		done <- runContext(ctx, []string{"-soak", "-soak-hours", "1000000", "-topology", "small", "-compute", "2", "-reps", "2"}, &sb)
	}()
	time.Sleep(300 * time.Millisecond) // soak well under way
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("interrupted soak returned %v, want partial report", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("interrupted soak did not stop")
	}
	out := sb.String()
	if !strings.Contains(out, "interrupted: soak truncated at ") {
		t.Errorf("missing truncation note in:\n%s", out)
	}
	if !strings.Contains(out, "Soak validation") {
		t.Errorf("partial tables missing in:\n%s", out)
	}
}
