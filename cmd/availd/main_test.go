package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is a goroutine-safe io.Writer the test can poll while run()
// owns it.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// waitForAddr polls the output for the listen line and extracts the
// bound address.
func waitForAddr(t *testing.T, out *syncBuffer) string {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		s := out.String()
		if i := strings.Index(s, "listening on "); i >= 0 {
			rest := s[i+len("listening on "):]
			if j := strings.IndexByte(rest, '\n'); j >= 0 {
				return rest[:j]
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("server never reported its address; output: %q", out.String())
	return ""
}

// TestRunServesAndDrains: the daemon comes up on an ephemeral port,
// answers queries, drains cleanly when its context is cancelled (the
// SIGTERM path), exits nil, and flushes the metrics snapshot.
func TestRunServesAndDrains(t *testing.T) {
	metricsPath := filepath.Join(t.TempDir(), "metrics.json")
	var out syncBuffer
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-addr", "127.0.0.1:0",
			"-drain", "500ms",
			"-metrics", metricsPath,
		}, &out)
	}()
	addr := waitForAddr(t, &out)

	resp, err := http.Get("http://" + addr + "/api/v1/analytic?topology=large")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analytic = %d, want 200", resp.StatusCode)
	}
	resp, err = http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics = %d, want 200", resp.StatusCode)
	}

	cancel() // the signal path: NotifyContext cancels this same way
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after drain, want nil (exit 0)", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not drain")
	}
	if !strings.Contains(out.String(), "drained cleanly") {
		t.Errorf("missing drain confirmation; output: %q", out.String())
	}

	// The telemetry snapshot was flushed and is valid JSON with the
	// serving-layer counters in it.
	b, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatalf("metrics snapshot not flushed: %v", err)
	}
	var snap struct {
		Counters []struct {
			Name  string  `json:"name"`
			Value float64 `json:"value"`
		} `json:"counters"`
	}
	if err := json.Unmarshal(b, &snap); err != nil {
		t.Fatalf("metrics snapshot not JSON: %v", err)
	}
	found := false
	for _, c := range snap.Counters {
		if c.Name == "http_requests_total" && c.Value >= 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("flushed snapshot missing http_requests_total >= 2: %s", b)
	}
}

// TestRunRejectsBadFlags: flag errors surface instead of serving.
func TestRunRejectsBadFlags(t *testing.T) {
	var out syncBuffer
	if err := run(context.Background(), []string{"-bogus"}, &out); err == nil {
		t.Error("unknown flag accepted")
	}
	if err := run(context.Background(), []string{"-addr", "999.999.999.999:0"}, &out); err == nil {
		t.Error("unlistenable address accepted")
	}
	if err := run(context.Background(), []string{"-cache", "-1"}, &out); err == nil {
		t.Error("negative cache size accepted")
	}
}
