// Command availd runs the resident availability service: the analytic
// models, the Monte Carlo what-if engine and the live soak testbed behind
// an HTTP API, built to the robustness standard the models themselves
// measure — bounded admission with explicit load shedding, per-request
// deadlines with honest partial results, per-request panic isolation, and
// graceful drain on SIGINT/SIGTERM.
//
// Usage:
//
//	availd [-addr host:port] [-max-concurrent n] [-max-queue n]
//	       [-timeout d] [-max-timeout d] [-drain d] [-cache n]
//	       [-metrics file.json] [-shard-workers url,url,...] [-store dir]
//
// Endpoints:
//
//	GET /api/v1/analytic    — closed-form evaluation (memoized)
//	GET /api/v1/mc          — Monte Carlo what-if sweep (gated, deadlined)
//	GET /api/v1/mc/shard    — worker side of the sharded fan-out
//	GET /api/v1/mc/stream   — MC sweep as an SSE stream of CI snapshots
//	GET /api/v1/soak        — virtual-time live soak (gated, deadlined)
//	GET /api/v1/soak/stream — soak as an SSE stream of progress snapshots
//	GET /metrics            — telemetry registry, Prometheus text format
//	GET /healthz            — liveness
//	GET /readyz             — readiness (503 while draining)
//
// With -shard-workers the instance coordinates: each MC replication
// budget is split across the listed worker availds by global replication
// index and merged bit-identically. With -store completed MC responses
// persist in a content-addressed on-disk cache keyed by the canonical
// request digest.
//
// On SIGINT/SIGTERM the server stops accepting, lets in-flight requests
// finish within the drain budget (cancelling stragglers, which answer
// truncated partial estimates), writes the final metrics snapshot when
// -metrics was given, and exits 0.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"sdnavail/internal/server"
	"sdnavail/internal/telemetry"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "availd:", err)
		os.Exit(1)
	}
}

// run parses args and serves until ctx is cancelled (the signal path),
// then drains and flushes telemetry. A clean drain returns nil: exit 0.
func run(ctx context.Context, args []string, out io.Writer) error {
	flag := flag.NewFlagSet("availd", flag.ContinueOnError)
	var (
		addr    = flag.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port)")
		maxConc = flag.Int("max-concurrent", 0, "max simultaneously executing simulation requests (0 = GOMAXPROCS)")
		maxQ    = flag.Int("max-queue", 0, "max requests waiting for a simulation slot before shedding 429 (0 = 2x max-concurrent)")
		timeout = flag.Duration("timeout", 10*time.Second, "default per-request deadline")
		maxTO   = flag.Duration("max-timeout", 2*time.Minute, "ceiling on the per-request ?timeout= override")
		drain   = flag.Duration("drain", 5*time.Second, "graceful-drain budget on shutdown")
		cache   = flag.Int("cache", 4096, "analytic memoization cache entries")
		metrics = flag.String("metrics", "", "write the final telemetry metrics snapshot as JSON to this file on exit")
		workers = flag.String("shard-workers", "", "comma-separated worker availd base URLs; non-empty runs this instance as a sharding coordinator")
		store   = flag.String("store", "", "persistent result store directory (content-addressed cache of completed MC responses)")
	)
	if err := flag.Parse(args); err != nil {
		return err
	}
	var shardWorkers []string
	for _, w := range strings.Split(*workers, ",") {
		if w = strings.TrimSpace(w); w != "" {
			shardWorkers = append(shardWorkers, w)
		}
	}

	tel := telemetry.New()
	srv, err := server.New(server.Config{
		Addr:           *addr,
		MaxConcurrent:  *maxConc,
		MaxQueue:       *maxQ,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTO,
		DrainTimeout:   *drain,
		CacheSize:      *cache,
		ShardWorkers:   shardWorkers,
		StoreDir:       *store,
		Telemetry:      tel,
	})
	if err != nil {
		return err
	}
	if err := srv.Listen(); err != nil {
		return err
	}
	fmt.Fprintf(out, "availd listening on %s\n", srv.Addr())

	serveErr := srv.Serve(ctx)
	if serveErr != nil {
		// Even a botched drain flushes what telemetry it has before the
		// error surfaces.
		flushMetrics(tel, *metrics)
		return serveErr
	}
	fmt.Fprintln(out, "availd drained cleanly")
	return flushMetrics(tel, *metrics)
}

// flushMetrics writes the metrics snapshot when a path was given.
func flushMetrics(tel *telemetry.Telemetry, path string) error {
	if path == "" {
		return nil
	}
	b, err := json.MarshalIndent(tel.Metrics.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
