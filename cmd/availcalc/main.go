// Command availcalc evaluates the analytic availability models for a
// controller profile, deployment topology and supervisor scenario, and
// prints the paper's encapsulation tables.
//
// Usage:
//
//	availcalc [-profile opencontrail|odl|onos] [-profile-file f.json]
//	          [-topology-file layout.json] [-tables] [-fmea]
//	          [-topology small|medium|large] [-scenario 1|2] [-nodes 2N+1]
//	          [-hw] [-ac f] [-av f] [-ah f] [-ar f] [-a f] [-as f]
//
// With -tables it prints Tables I-III; with -fmea the full failure mode
// and effects analysis; otherwise it evaluates the model and reports CP
// and DP availability with downtime.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"sdnavail/internal/analytic"
	"sdnavail/internal/experiments"
	"sdnavail/internal/profile"
	"sdnavail/internal/relmath"
	"sdnavail/internal/topology"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "availcalc:", err)
		os.Exit(1)
	}
}

// run parses args and writes the requested report to out. It is the
// testable core of the command.
func run(args []string, out io.Writer) error {
	flag := flag.NewFlagSet("availcalc", flag.ContinueOnError)
	var (
		profName = flag.String("profile", "opencontrail", "controller profile: opencontrail, odl or onos")
		profFile = flag.String("profile-file", "", "load the controller profile from a JSON file instead (see profile.FromJSON)")
		tables   = flag.Bool("tables", false, "print the paper's Tables I-III and exit")
		fmea     = flag.Bool("fmea", false, "print the full failure mode and effects analysis and exit")
		topoName = flag.String("topology", "large", "deployment topology: small, medium or large")
		topoFile = flag.String("topology-file", "", "load a custom topology from a JSON file and evaluate it exactly (see topology.FromJSON)")
		scenario = flag.Int("scenario", 2, "supervisor scenario: 1 (not required) or 2 (required)")
		nodes    = flag.Int("nodes", 3, "controller cluster size (2N+1)")
		hwOnly   = flag.Bool("hw", false, "evaluate the HW-centric model instead of the SW-centric one")
		ac       = flag.Float64("ac", analytic.Defaults().AC, "role instance availability A_C (HW-centric)")
		av       = flag.Float64("av", analytic.Defaults().AV, "VM availability A_V")
		ah       = flag.Float64("ah", analytic.Defaults().AH, "host availability A_H")
		ar       = flag.Float64("ar", analytic.Defaults().AR, "rack availability A_R")
		a        = flag.Float64("a", analytic.Defaults().A, "supervised process availability A")
		as       = flag.Float64("as", analytic.Defaults().AS, "manual/unsupervised process availability A_S")
	)
	if err := flag.Parse(args); err != nil {
		return err
	}

	var prof *profile.Profile
	var err error
	if *profFile != "" {
		data, rerr := os.ReadFile(*profFile)
		if rerr != nil {
			return rerr
		}
		prof, err = profile.FromJSON(data)
	} else {
		prof, err = profileByName(*profName)
	}
	if err != nil {
		return err
	}
	if *tables {
		fmt.Fprintln(out, experiments.TableI(prof).Text())
		fmt.Fprintln(out, experiments.TableII(prof).Text())
		fmt.Fprintln(out, experiments.TableIII(prof).Text())
		return nil
	}
	if *fmea {
		fmt.Fprint(out, profile.FMEAText(prof, *nodes))
		return nil
	}

	params := analytic.Params{AC: *ac, AV: *av, AH: *ah, AR: *ar, A: *a, AS: *as}
	if err := params.Validate(); err != nil {
		return err
	}

	sc := analytic.SupervisorNotRequired
	if *scenario == 2 {
		sc = analytic.SupervisorRequired
	} else if *scenario != 1 {
		return fmt.Errorf("scenario must be 1 or 2, got %d", *scenario)
	}

	if *topoFile != "" {
		data, err := os.ReadFile(*topoFile)
		if err != nil {
			return err
		}
		topo, err := topology.FromJSON(data)
		if err != nil {
			return err
		}
		m := analytic.NewExactModel(prof, topo, sc)
		m.Params = params
		cp, err := m.ControlPlane()
		if err != nil {
			return err
		}
		dp, err := m.DataPlane()
		if err != nil {
			return err
		}
		racks, hosts, vms := topo.Counts()
		fmt.Fprintf(out, "Exact availability — %s on custom topology %q (%d racks, %d hosts, %d VMs), %s\n",
			prof.Name, topo.Name, racks, hosts, vms, sc)
		fmt.Fprintf(out, "  SDN control plane  A_CP = %.8f  (%.2f min/year downtime)\n", cp, relmath.DowntimeMinutesPerYear(cp))
		fmt.Fprintf(out, "  host data plane    A_DP = %.8f  (%.1f min/year downtime)\n", dp, relmath.DowntimeMinutesPerYear(dp))
		return nil
	}

	kind, err := kindByName(*topoName)
	if err != nil {
		return err
	}

	if *hwOnly {
		m := analytic.NewHWModel()
		m.ClusterSize = *nodes
		if err := m.Validate(); err != nil {
			return err
		}
		avail, err := m.ByKind(kind, params)
		if err != nil {
			return err
		}
		approx, _ := m.Approx(kind, params)
		fmt.Fprintf(out, "HW-centric Controller availability (%s, %d nodes)\n", kind, *nodes)
		fmt.Fprintf(out, "  exact:  %.8f  (%.2f min/year downtime)\n", avail, relmath.DowntimeMinutesPerYear(avail))
		fmt.Fprintf(out, "  approx: %.8f  (A_{q/n} intuition form)\n", approx)
		return nil
	}

	m := analytic.NewModel(prof, analytic.Option{Kind: kind, Scenario: sc})
	m.Params = params
	m.ClusterSize = *nodes
	if err := m.Validate(); err != nil {
		return err
	}
	cp, dp := m.Evaluate()
	fmt.Fprintf(out, "SW-centric availability — %s, option %s, %d nodes\n", prof.Name, m.Option.Label(), *nodes)
	fmt.Fprintf(out, "  SDN control plane  A_CP = %.8f  (%.2f min/year downtime)\n", cp, relmath.DowntimeMinutesPerYear(cp))
	fmt.Fprintf(out, "  shared DP          A_SDP = %.8f\n", m.SharedDP())
	fmt.Fprintf(out, "  local  DP          A_LDP = %.8f\n", m.LocalDP())
	fmt.Fprintf(out, "  host data plane    A_DP = %.8f  (%.1f min/year downtime)\n", dp, relmath.DowntimeMinutesPerYear(dp))
	return nil
}

func profileByName(name string) (*profile.Profile, error) {
	switch name {
	case "opencontrail":
		return profile.OpenContrail3x(), nil
	case "odl":
		return profile.ODLLike(), nil
	case "onos":
		return profile.ONOSLike(), nil
	default:
		return nil, fmt.Errorf("unknown profile %q (want opencontrail, odl or onos)", name)
	}
}

func kindByName(name string) (topology.Kind, error) {
	switch name {
	case "small":
		return topology.Small, nil
	case "medium":
		return topology.Medium, nil
	case "large":
		return topology.Large, nil
	default:
		return topology.Custom, fmt.Errorf("unknown topology %q (want small, medium or large)", name)
	}
}
