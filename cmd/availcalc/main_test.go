package main

import (
	"os"
	"strings"
	"testing"

	"sdnavail/internal/profile"
	"sdnavail/internal/topology"
)

func runOK(t *testing.T, args ...string) string {
	t.Helper()
	var sb strings.Builder
	if err := run(args, &sb); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return sb.String()
}

func TestTablesOutput(t *testing.T) {
	out := runOK(t, "-tables")
	for _, want := range []string{
		"Table I", "Table II", "Table III",
		"cassandra-db (Config)", "2 of 3", "vrouter-agent",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("tables output missing %q", want)
		}
	}
}

func TestFMEAOutput(t *testing.T) {
	out := runOK(t, "-fmea")
	for _, want := range []string{"supervisor-config", "effect:", "recovery:"} {
		if !strings.Contains(out, want) {
			t.Errorf("fmea output missing %q", want)
		}
	}
}

func TestSWEvaluation(t *testing.T) {
	out := runOK(t, "-topology", "large", "-scenario", "2")
	for _, want := range []string{"option 2L", "A_CP = 0.9999974", "1.36 min/year"} {
		if !strings.Contains(out, want) {
			t.Errorf("SW output missing %q in:\n%s", want, out)
		}
	}
}

func TestHWEvaluation(t *testing.T) {
	out := runOK(t, "-hw", "-topology", "small")
	if !strings.Contains(out, "HW-centric") || !strings.Contains(out, "0.99998873") {
		t.Errorf("HW output unexpected:\n%s", out)
	}
}

func TestAlternateProfiles(t *testing.T) {
	for _, p := range []string{"odl", "onos"} {
		out := runOK(t, "-profile", p, "-topology", "large")
		if !strings.Contains(out, "A_CP") {
			t.Errorf("profile %s produced no evaluation", p)
		}
	}
}

func TestFiveNodeEvaluation(t *testing.T) {
	out := runOK(t, "-nodes", "5", "-topology", "large")
	if !strings.Contains(out, "5 nodes") {
		t.Errorf("5-node output unexpected:\n%s", out)
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-profile", "nope"},
		{"-topology", "nope"},
		{"-scenario", "3"},
		{"-nodes", "4"},
		{"-ah", "1.5"},
		{"-hw", "-nodes", "2"},
		{"-badflag"},
	}
	for _, args := range cases {
		var sb strings.Builder
		if err := run(args, &sb); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}

func TestProfileFromFile(t *testing.T) {
	doc := `{
	  "name": "File controller",
	  "clusterRoles": ["Core"],
	  "hostRole": "Edge",
	  "processes": [
	    {"name": "core", "role": "Core", "restart": "auto", "cp": "majority", "dp": "one"},
	    {"name": "fwd", "role": "Edge", "restart": "auto", "dp": "one", "perHost": true}
	  ]
	}`
	path := t.TempDir() + "/prof.json"
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	out := runOK(t, "-profile-file", path, "-topology", "large")
	if !strings.Contains(out, "File controller") {
		t.Errorf("file profile not used:\n%s", out)
	}
	var sb strings.Builder
	if err := run([]string{"-profile-file", "/nonexistent.json"}, &sb); err == nil {
		t.Error("missing profile file accepted")
	}
}

func TestTopologyFromFile(t *testing.T) {
	// Round-trip a reference layout through JSON and check the exact
	// evaluation matches the closed form printed by the normal path.
	prof := profile.OpenContrail3x()
	topo := topology.NewLarge(prof.ClusterRoles, 3)
	data, err := topology.ToJSON(topo)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/topo.json"
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	out := runOK(t, "-topology-file", path, "-scenario", "2")
	if !strings.Contains(out, "custom topology") || !strings.Contains(out, "A_CP = 0.9999974") {
		t.Errorf("exact custom evaluation unexpected:\n%s", out)
	}
	var sb strings.Builder
	if err := run([]string{"-topology-file", "/nonexistent.json"}, &sb); err == nil {
		t.Error("missing topology file accepted")
	}
}
